"""Graceful degradation: retry, back off, correct, or poison — never
crash.

The :class:`DegradedModeManager` is the policy layer between raw
media reads and consumers that need trustworthy bytes (the scrubber,
recovery tooling, the ``repro scrub`` CLI).  Instead of letting an
:class:`~repro.common.errors.UncorrectableMediaError` propagate as a
hard failure, it:

1. re-reads the line up to the :class:`RetryPolicy`'s budget —
   transient faults (a bad sense, a disturbed read) clear on retry;
   each retry consumes a deterministic, exponentially growing slice
   of *simulation* time, so retry storms are visible in
   ``repro profile`` / time-series output instead of being free;
2. applies ECC correction when the pipeline carries codes — a
   single-bit flip is corrected *and healed back* to the device
   (scrub-on-read);
3. poisons lines whose damage survives both — they are quarantined
   in :attr:`poisoned` (a set the caller may share across recovery
   cycles) and reported through the
   :class:`~repro.consistency.scrub.ScrubReport`, and subsequent
   reads raise immediately instead of handing out garbage.

Everything is counted in the shared ``faults`` metrics scope so a
campaign can assert "N injected, N corrected + M poisoned, 0 silently
absorbed".
"""

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.bmo.ecc import check as ecc_check
from repro.common.errors import ConfigError, UncorrectableMediaError
from repro.obs import log as runlog

_TRACK = ("faults", "degraded")


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry/backoff for resilient media reads.

    The Nth retry (1-based) waits ``base_delay_ns * multiplier**(N-1)``
    simulated nanoseconds, capped at ``max_delay_ns``.  The policy is
    pure arithmetic on integers — identical inputs always cost the
    same simulated time, so backoff never perturbs determinism.
    """

    #: Retries after the first attempt (attempts = max_retries + 1).
    max_retries: int = 2
    #: Delay before the first retry, in simulated ns.
    base_delay_ns: int = 50
    #: Exponential growth factor between consecutive retries.
    multiplier: int = 2
    #: Ceiling for a single retry's delay.
    max_delay_ns: int = 10_000

    def validate(self) -> "RetryPolicy":
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.base_delay_ns < 0 or self.max_delay_ns < 0:
            raise ConfigError("retry delays must be >= 0")
        if self.multiplier < 1:
            raise ConfigError("retry multiplier must be >= 1")
        return self

    def delay_for(self, attempt: int) -> int:
        """Backoff before retry ``attempt`` (1-based), in sim-ns."""
        if attempt < 1:
            return 0
        return min(self.base_delay_ns * self.multiplier ** (attempt - 1),
                   self.max_delay_ns)

    def total_budget_ns(self) -> int:
        """Worst-case sim-time one read can spend backing off."""
        return sum(self.delay_for(a)
                   for a in range(1, self.max_retries + 1))


class DegradedModeManager:
    """Bounded retry + backoff, ECC healing, line poisoning."""

    def __init__(self, system, injector=None, max_retries: int = 2,
                 policy: Optional[RetryPolicy] = None,
                 quarantine: Optional[Set[int]] = None):
        self.system = system
        self.injector = injector if injector is not None \
            else getattr(system, "injector", None)
        self.policy = (policy if policy is not None
                       else RetryPolicy(max_retries=max_retries)
                       ).validate()
        self.max_retries = self.policy.max_retries
        #: Lines quarantined after exhausting retries.  When the
        #: caller passes a shared set, poisoning survives this
        #: manager (soak cycles carry one quarantine across crashes).
        self.poisoned: Set[int] = quarantine if quarantine is not None \
            else set()
        #: Lines ECC-corrected (and healed in NVM) by this manager.
        self.corrected: List[int] = []
        stats = system.metrics.scope("faults")
        self._c_corrected = stats.counter("corrected_lines")
        self._c_retries = stats.counter("read_retries")
        self._c_poisoned = stats.counter("poisoned_lines")
        self._c_healed = stats.counter("healed_writes")
        self._c_backoff = stats.counter("retry_backoff_ns")
        self._c_escalations = stats.counter("escalations")
        self.tracer = system.tracer

    # -- helpers -----------------------------------------------------------
    def _code_for(self, addr: int) -> Optional[bytes]:
        ecc = self.system.pipeline.by_name.get("ecc")
        if ecc is None:
            return None
        return ecc.codes.get(addr)

    def _trace(self, name: str, addr: int, **extra) -> None:
        if self.tracer.enabled:
            self.tracer.instant(name, "faults", _TRACK,
                                ts_ns=self.system.sim.now,
                                args={"addr": addr, **extra})
        runlog.event("faults.degraded", name,
                     sim_ns=self.system.sim.now, level="warn",
                     addr=addr, **extra)

    def _backoff(self, attempt: int) -> None:
        """Consume the retry's deterministic sim-time delay.

        Degraded-mode reads run on a quiescent (post-crash) system, so
        advancing the clock directly is safe — there are no pending
        events to dispatch, and ``Simulator.run(until=...)`` uses the
        same ``now = max(now, until)`` idiom.
        """
        delay = self.policy.delay_for(attempt)
        if delay:
            self.system.sim.now += delay
            self._c_backoff.add(delay)

    def poison(self, addr: int) -> None:
        if addr not in self.poisoned:
            self.poisoned.add(addr)
            self._c_poisoned.add()
            self._trace("poison-line", addr)

    # -- the resilient read path ---------------------------------------------
    def read_line(self, addr: int) -> bytes:
        """Read one line with retry + backoff + ECC; raise only after
        poisoning.

        Returns trustworthy bytes or raises
        :class:`UncorrectableMediaError` — never a silently damaged
        line.  Lines already poisoned raise immediately.
        """
        if addr in self.poisoned:
            raise UncorrectableMediaError(
                f"line {addr:#x} is poisoned", line_addr=addr)
        code = self._code_for(addr)
        last_error = None
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                self._c_retries.add()
                self._backoff(attempt)
                self._trace("read-retry", addr, attempt=attempt,
                            backoff_ns=self.policy.delay_for(attempt))
            raw = self.system.nvm.read_line(addr)
            if self.injector is not None:
                raw = self.injector.filter_read(addr, raw)
            if code is None:
                # No ECC coverage: nothing to judge against; the MAC
                # layer above (scrub/recovery) is the next net.
                return raw
            try:
                fixed = ecc_check(raw, code, line_addr=addr)
            except UncorrectableMediaError as error:
                last_error = error
                continue
            if fixed != raw:
                # Correctable damage: heal the stored copy so the
                # next read doesn't pay again (scrub-on-read).  The
                # heal is itself an instrumented scrub step — a
                # seeded ``scrub_crash`` can strike right before it.
                if self.injector is not None:
                    self.injector.on_scrub_step("heal", addr=addr)
                self.system.nvm.write_line(addr, fixed)
                self.corrected.append(addr)
                self._c_corrected.add()
                self._c_healed.add()
                self._trace("ecc-correct", addr)
            return fixed
        # Escalation: the retry budget is exhausted — quarantine the
        # line and raise an explicit, accounted error.
        self._c_escalations.add()
        if self.injector is not None:
            self.injector.on_scrub_step("poison", addr=addr)
        self.poison(addr)
        raise UncorrectableMediaError(
            f"line {addr:#x} uncorrectable after "
            f"{self.policy.max_retries + 1} attempts", line_addr=addr) \
            from last_error

    def take_corrections(self) -> List[int]:
        """Corrections accumulated since the last call (for reports)."""
        out, self.corrected = self.corrected, []
        return out
