"""Graceful degradation: retry, correct, or poison — never crash.

The :class:`DegradedModeManager` is the policy layer between raw
media reads and consumers that need trustworthy bytes (the scrubber,
recovery tooling, the ``repro scrub`` CLI).  Instead of letting an
:class:`~repro.common.errors.UncorrectableMediaError` propagate as a
hard failure, it:

1. re-reads the line up to ``max_retries`` times — transient faults
   (a bad sense, a disturbed read) clear on retry;
2. applies ECC correction when the pipeline carries codes — a
   single-bit flip is corrected *and healed back* to the device
   (scrub-on-read);
3. poisons lines whose damage survives both — they are quarantined
   in :attr:`poisoned` and reported through the
   :class:`~repro.consistency.scrub.ScrubReport`, and subsequent
   reads raise immediately instead of handing out garbage.

Everything is counted in the shared ``faults`` metrics scope so a
campaign can assert "N injected, N corrected + M poisoned, 0 silently
absorbed".
"""

from typing import List, Optional, Set

from repro.bmo.ecc import check as ecc_check
from repro.common.errors import UncorrectableMediaError
from repro.obs import log as runlog

_TRACK = ("faults", "degraded")


class DegradedModeManager:
    """Bounded retry + re-fetch, ECC healing, line poisoning."""

    def __init__(self, system, injector=None, max_retries: int = 2):
        self.system = system
        self.injector = injector if injector is not None \
            else getattr(system, "injector", None)
        self.max_retries = max_retries
        #: Lines quarantined after exhausting retries.
        self.poisoned: Set[int] = set()
        #: Lines ECC-corrected (and healed in NVM) by this manager.
        self.corrected: List[int] = []
        stats = system.metrics.scope("faults")
        self._c_corrected = stats.counter("corrected_lines")
        self._c_retries = stats.counter("read_retries")
        self._c_poisoned = stats.counter("poisoned_lines")
        self._c_healed = stats.counter("healed_writes")
        self.tracer = system.tracer

    # -- helpers -----------------------------------------------------------
    def _code_for(self, addr: int) -> Optional[bytes]:
        ecc = self.system.pipeline.by_name.get("ecc")
        if ecc is None:
            return None
        return ecc.codes.get(addr)

    def _trace(self, name: str, addr: int) -> None:
        if self.tracer.enabled:
            self.tracer.instant(name, "faults", _TRACK,
                                ts_ns=self.system.sim.now,
                                args={"addr": addr})
        runlog.event("faults.degraded", name,
                     sim_ns=self.system.sim.now, level="warn",
                     addr=addr)

    def poison(self, addr: int) -> None:
        if addr not in self.poisoned:
            self.poisoned.add(addr)
            self._c_poisoned.add()
            self._trace("poison-line", addr)

    # -- the resilient read path ---------------------------------------------
    def read_line(self, addr: int) -> bytes:
        """Read one line with retry + ECC; raise only after poisoning.

        Returns trustworthy bytes or raises
        :class:`UncorrectableMediaError` — never a silently damaged
        line.  Lines already poisoned raise immediately.
        """
        if addr in self.poisoned:
            raise UncorrectableMediaError(
                f"line {addr:#x} is poisoned", line_addr=addr)
        code = self._code_for(addr)
        last_error = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self._c_retries.add()
            raw = self.system.nvm.read_line(addr)
            if self.injector is not None:
                raw = self.injector.filter_read(addr, raw)
            if code is None:
                # No ECC coverage: nothing to judge against; the MAC
                # layer above (scrub/recovery) is the next net.
                return raw
            try:
                fixed = ecc_check(raw, code, line_addr=addr)
            except UncorrectableMediaError as error:
                last_error = error
                continue
            if fixed != raw:
                # Correctable damage: heal the stored copy so the
                # next read doesn't pay again (scrub-on-read).
                self.system.nvm.write_line(addr, fixed)
                self.corrected.append(addr)
                self._c_corrected.add()
                self._c_healed.add()
                self._trace("ecc-correct", addr)
            return fixed
        self.poison(addr)
        raise UncorrectableMediaError(
            f"line {addr:#x} uncorrectable after "
            f"{self.max_retries + 1} attempts", line_addr=addr) \
            from last_error

    def take_corrections(self) -> List[int]:
        """Corrections accumulated since the last call (for reports)."""
        out, self.corrected = self.corrected, []
        return out
