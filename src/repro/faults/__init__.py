"""Deterministic fault injection + graceful degradation.

``repro.faults`` models what the paper's robustness story has to
survive: media cells flipping or sticking, metadata stores being
corrupted, stale IRB results, and write-queue entries dropped or torn
by power loss.  Everything is seeded — the same
:class:`~repro.faults.plan.FaultPlan` against the same system seed
produces byte-identical behaviour — so fault campaigns are replayable
evidence, not flaky noise.

* :class:`~repro.faults.plan.FaultSpec` / ``FaultPlan`` describe
  *what* to inject and *when* (on the Nth eligible event);
* :class:`~repro.faults.injector.FaultInjector` is the hook layer the
  machine calls from the device, write queue, Janus engine, and crash
  path;
* :class:`~repro.faults.degraded.DegradedModeManager` is the
  graceful-degradation policy: bounded retry with deterministic
  sim-time exponential backoff (:class:`~repro.faults.degraded.
  RetryPolicy`) for correctable faults, line poisoning for
  uncorrectable ones;
* recovery and scrub are themselves crashable: ``recovery_crash`` /
  ``scrub_crash`` specs fire at instrumented steps and raise
  :class:`~repro.common.errors.RecoveryCrash` (see
  ``docs/robustness.md`` for the idempotence contract).
"""

from repro.faults.degraded import DegradedModeManager, RetryPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "FaultInjector",
    "DegradedModeManager",
    "RetryPolicy",
]
