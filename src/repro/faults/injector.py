"""The fault-injection hook layer.

One :class:`FaultInjector` attaches to one
:class:`~repro.core.machine.NvmSystem` and is called from four sites:

* ``on_device_read(addr)`` — NVM device read timing path (event
  counting for transient-read faults; the corruption itself is
  applied by :meth:`filter_read` on the resilient-read data path,
  since the timing model carries no data);
* ``on_device_write(entry)`` — after a write-queue drain (or ADR
  flush) lands bytes in functional NVM: one-shot bit flips and
  stuck-at cells mutate the stored line *after* the write, exactly
  like failing media;
* ``on_irb_complete(entry)`` — after the Janus engine finishes
  pre-executing an IRB entry: corrupt the buffered data copy or
  perturb a pre-executed result so the entry is stale;
* ``on_power_failure()`` / ``adr_fate(entry)`` — at ``crash()``:
  metadata-store corruption, and per-entry drop/tear decisions for
  the ADR flush;
* ``on_recovery_step(stage)`` / ``on_scrub_step(stage)`` — called by
  :mod:`repro.consistency.recovery` and
  :mod:`repro.consistency.scrub` at every instrumented step: a
  ``recovery_crash`` / ``scrub_crash`` spec raises
  :class:`~repro.common.errors.RecoveryCrash` there, modelling a
  second power failure mid-recovery (the idempotence oracle and the
  soak harness drive these).

An injector used on the recovery path is *detached* — it never saw
``attach()``, so it has no system, metrics scope, or tracer; every
emission site guards for that.

Every injection is counted in the ``faults`` metrics scope and, when
tracing is enabled, emitted as an instant span — the observability
layer is how campaigns prove a fault was *injected* and separately
prove it was *handled*.
"""

from typing import Dict, List, Optional, Tuple

from repro.common.errors import RecoveryCrash
from repro.common.rng import DeterministicRng
from repro.common.units import CACHE_LINE_BYTES
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import log as runlog

_TRACK = ("faults", "injector")


def _apply_bits(line: bytes, bits, mode: str = "flip",
                value: int = 0) -> bytes:
    out = bytearray(line)
    for bit in bits:
        byte, shift = bit // 8, bit % 8
        if mode == "flip":
            out[byte] ^= 1 << shift
        elif value:
            out[byte] |= 1 << shift
        else:
            out[byte] &= ~(1 << shift)
    return bytes(out)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a live system."""

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.system = None
        self._rng = DeterministicRng(self.plan.seed).stream(
            "fault-injector")
        #: hook site -> number of eligible events observed.
        self.events: Dict[str, int] = {}
        #: Everything injected, in order — campaign reports embed it.
        self.injected: List[Dict] = []
        #: line addr -> [(bit, stuck value)] for stuck-at cells.
        self._stuck: Dict[int, List[Tuple[int, int]]] = {}
        #: line addr -> bits armed for one transient read corruption.
        self._transient_armed: Dict[int, Tuple[int, ...]] = {}
        self.stats = None
        self.tracer = None

    # -- wiring -----------------------------------------------------------
    def attach(self, system) -> "FaultInjector":
        """Wire this injector into a constructed system."""
        self.system = system
        self.stats = system.metrics.scope("faults")
        self.tracer = system.tracer
        self._c_injected = self.stats.counter("injected")
        # Every shard's device / queue / engine reports here (one list
        # each on the unsharded machine).
        for device in system.devices:
            device.injector = self
        for write_queue in system.write_queues:
            write_queue.injector = self
        for engine in system.janus_engines:
            engine.injector = self
        return self

    # -- bookkeeping -------------------------------------------------------
    def _bump(self, site: str) -> int:
        count = self.events.get(site, 0) + 1
        self.events[site] = count
        return count

    def _fire(self, spec: FaultSpec, **detail) -> None:
        record = {"kind": spec.kind, **detail}
        self.injected.append(record)
        sim_ns = self.system.sim.now if self.system is not None \
            else None
        if self.stats is not None:
            self._c_injected.add()
            self.stats.counter(f"injected_{spec.kind}").add()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant(
                f"fault:{spec.kind}", "faults", _TRACK,
                ts_ns=sim_ns, args=record)
        runlog.event("faults", "injected", sim_ns=sim_ns,
                     level="warn", **record)

    def _eligible(self, spec: FaultSpec,
                  addr: Optional[int] = None) -> bool:
        """Apply the spec's ``line_range`` window and seeded
        ``probability`` gate (the event count is unaffected)."""
        if spec.line_range is not None and addr is not None:
            lo, hi = spec.line_range
            if not lo <= addr < hi:
                return False
        if spec.probability < 1.0 \
                and self._rng.random() >= spec.probability:
            return False
        return True

    def injected_of(self, kind: str) -> List[Dict]:
        return [r for r in self.injected if r["kind"] == kind]

    # -- media: device writes ------------------------------------------------
    def on_device_write(self, entry) -> None:
        """Called after ``entry``'s bytes landed in functional NVM."""
        count = self._bump("device_write")
        nvm = self.system.nvm
        for spec in self.plan.by_kind("media_write_flip"):
            if spec.after_n != count:
                continue
            if not self._eligible(spec, addr=entry.addr):
                continue
            if spec.sticky:
                cells = self._stuck.setdefault(entry.addr, [])
                cells.extend((bit, spec.stuck_value)
                             for bit in spec.bits)
                self._fire(spec, addr=entry.addr,
                           bits=list(spec.bits), sticky=True)
            else:
                nvm.write_line(entry.addr, _apply_bits(
                    nvm.read_line(entry.addr), spec.bits))
                self._fire(spec, addr=entry.addr,
                           bits=list(spec.bits), sticky=False)
        cells = self._stuck.get(entry.addr)
        if cells:
            line = nvm.read_line(entry.addr)
            for bit, value in cells:
                line = _apply_bits(line, (bit,), mode="stuck",
                                   value=value)
            nvm.write_line(entry.addr, line)

    # -- media: device reads -------------------------------------------------
    def on_device_read(self, addr: int) -> None:
        """Timing-path read: counts events and arms transient faults."""
        count = self._bump("device_read")
        for spec in self.plan.by_kind("media_read_transient"):
            if spec.after_n == count \
                    and self._eligible(spec, addr=addr):
                self._transient_armed[addr] = spec.bits

    def filter_read(self, addr: int, data: bytes) -> bytes:
        """Resilient-read data path: corrupt one returned copy.

        Transient faults are one-shot — the stored line is clean, so
        the :class:`DegradedModeManager`'s retry succeeds.  Fires
        either because :meth:`on_device_read` armed this address or
        on the Nth filtered read.
        """
        count = self._bump("filtered_read")
        fired = None
        bits = self._transient_armed.pop(addr, None)
        if bits is not None:
            specs = self.plan.by_kind("media_read_transient")
            fired = specs[0] if specs else None
        else:
            for spec in self.plan.by_kind("media_read_transient"):
                if spec.after_n == count \
                        and self._eligible(spec, addr=addr):
                    fired, bits = spec, spec.bits
                    break
        if fired is None or bits is None:
            return data
        self._fire(fired, addr=addr, bits=list(bits))
        return _apply_bits(data, bits)

    # -- IRB ---------------------------------------------------------------
    def on_irb_complete(self, entry) -> None:
        """Called by the Janus engine after pre-execution finishes.

        ``after_n`` counts *eligible* completions per fault kind
        (entries a corruption could actually touch), so a plan never
        lands on a data-less commit-value entry and fizzles.
        """
        self._bump("irb_complete")
        if entry.data is not None:
            count = self._bump("irb_complete_data")
            for spec in self.plan.by_kind("irb_corrupt"):
                if spec.after_n == count:
                    entry.data = _apply_bits(entry.data, spec.bits)
                    self._fire(spec, line_addr=entry.line_addr,
                               bits=list(spec.bits))
        values = entry.ctx.values
        if "counter" in values or "is_dup" in values:
            count = self._bump("irb_complete_result")
            for spec in self.plan.by_kind("irb_stale"):
                if spec.after_n != count:
                    continue
                if "counter" in values:
                    values["counter"] = values["counter"] + 1
                    self._fire(spec, line_addr=entry.line_addr,
                               perturbed="counter")
                else:
                    values["is_dup"] = not values["is_dup"]
                    self._fire(spec, line_addr=entry.line_addr,
                               perturbed="is_dup")

    # -- power failure -------------------------------------------------------
    def adr_fate(self, entry) -> str:
        """Fate of one accepted entry during the ADR flush."""
        count = self._bump("adr_entry")
        for spec in self.plan.by_kind("wq_drop"):
            if spec.after_n == count:
                self._fire(spec, addr=entry.addr)
                return "drop"
        for spec in self.plan.by_kind("wq_tear"):
            if spec.after_n == count:
                self._fire(spec, addr=entry.addr)
                return "tear"
        return "flush"

    def tear(self, entry) -> None:
        """Mutate ``entry`` into a torn line: new head, old tail."""
        old = self.system.nvm.read_line(entry.addr)
        half = CACHE_LINE_BYTES // 2
        entry.data = entry.data[:half] + old[half:]

    def on_power_failure(self) -> None:
        """Apply metadata-store corruption at the crash point."""
        pipeline = self.system.pipeline
        integrity = pipeline.by_name.get("integrity")
        encryption = pipeline.by_name.get("encryption")
        for spec in self.plan.by_kind("meta_merkle"):
            if integrity is None or not integrity.committed_leaves:
                continue
            keys = sorted(integrity.committed_leaves)
            index = keys[self._rng.randrange(len(keys))]
            leaf = integrity.committed_leaves[index]
            bit = spec.bits[0] % (len(leaf) * 8)
            integrity.committed_leaves[index] = _apply_bits(
                leaf, (bit,))
            self._fire(spec, leaf=index)
        for spec in self.plan.by_kind("meta_counter"):
            if encryption is None:
                continue
            counters = encryption.engine.snapshot_counters()
            if not counters:
                continue
            keys = sorted(counters)
            addr = keys[self._rng.randrange(len(keys))]
            encryption.engine.restore_counters(
                {**counters, addr: counters[addr] + 1})
            self._fire(spec, addr=addr)

    # -- crash points inside recovery / scrub -------------------------------
    def _crash_step(self, site: str, kind: str, stage: str,
                    **detail) -> None:
        count = self._bump(site)
        for spec in self.plan.by_kind(kind):
            if spec.after_n != count or not self._eligible(spec):
                continue
            self._fire(spec, step=count, stage=stage, **detail)
            raise RecoveryCrash(
                f"seeded {kind} at {site} {count} ({stage})",
                step=count, stage=stage)

    def on_recovery_step(self, stage: str, **detail) -> None:
        """One instrumented recovery step (log scan, restore write,
        media fetch).  Raises :class:`RecoveryCrash` when an armed
        ``recovery_crash`` spec's ``after_n`` matches — modelling a
        second power failure mid-recovery."""
        self._crash_step("recovery_step", "recovery_crash", stage,
                         **detail)

    def on_scrub_step(self, stage: str, **detail) -> None:
        """One instrumented scrub step (fetch / heal / poison)."""
        self._crash_step("scrub_step", "scrub_crash", stage, **detail)
