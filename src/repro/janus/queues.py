"""Pre-execution request/operation queues and the decoder.

Flow (paper Fig. 7a): the processor sends :class:`PreExecRequest`
objects into the :class:`PreExecRequestQueue` (step 1); the decoder
splits each request into cache-line-sized :class:`PreExecOperation`
entries (step 2) that land in the :class:`PreExecOperationQueue`
(step 3) for the optimized BMO logic.

Deferred requests (``*_BUF``) sit in the request queue until a
``PRE_START_BUF`` releases them; buffered requests that touch the same
cache line are *coalesced* before decoding (§4.3.2, §4.4 — the point
of the deferred interface).  A full request queue discards the oldest
buffered request to make room (§4.6): dropping pre-execution is always
correctness-neutral, it only costs performance.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.units import CACHE_LINE_BYTES, align_down, line_span
from repro.sim import Simulator, Store


class PreFunc(enum.Enum):
    """Function field of a request (Table 2)."""

    BOTH = "both"
    ADDR = "addr"
    DATA = "data"
    BOTH_VAL = "both_val"


@dataclass
class PreExecRequest:
    """One software-issued pre-execution request (pre-decode)."""

    pre_id: int
    thread_id: int
    transaction_id: int
    func: PreFunc
    addr: Optional[int] = None
    data: Optional[bytes] = None
    size: int = 0
    deferred: bool = False
    issued_at: float = 0.0


@dataclass
class PreExecOperation:
    """One cache-line-sized operation (post-decode)."""

    pre_id: int
    thread_id: int
    transaction_id: int
    line_addr: Optional[int]
    line_data: Optional[bytes]
    issued_at: float = 0.0
    #: For address-less data operations: ordinal of the line within
    #: the request, so a later address-bearing request can pair up.
    data_seq: int = 0


def decode_request(request: PreExecRequest,
                   line_bytes: int = CACHE_LINE_BYTES
                   ) -> List[PreExecOperation]:
    """Split a request into cache-line-sized operations.

    * With an address: one operation per touched line; the data (if
      present) is sliced to each line, honouring the byte offset of
      unaligned requests.
    * Data-only (``PRE_DATA``): the paper requires the object to be
      cache-line-aligned (§4.4 guideline 2), so the data is cut into
      line-sized chunks with unknown addresses.
    """
    ops: List[PreExecOperation] = []
    if request.addr is not None:
        size = request.size or (len(request.data) if request.data else 0)
        base = align_down(request.addr, line_bytes)
        for seq, line_addr in enumerate(
                line_span(request.addr, size, line_bytes)):
            line_data = None
            if request.data is not None:
                # The data-dependent sub-ops need the *whole* line
                # image (fingerprints and XOR pads are line-granular).
                # A request that covers only part of this line
                # therefore degrades to address-only pre-execution for
                # it — exactly the paper's guideline 2 in section 4.4
                # (use PRE_ADDR, or wait for full knowledge, when the
                # object is not line-aligned).
                req_start = max(request.addr, line_addr)
                req_end = min(request.addr + size, line_addr + line_bytes)
                if req_start == line_addr and \
                        req_end == line_addr + line_bytes:
                    src_off = req_start - request.addr
                    line_data = bytes(
                        request.data[src_off:src_off + line_bytes])
            ops.append(PreExecOperation(
                pre_id=request.pre_id, thread_id=request.thread_id,
                transaction_id=request.transaction_id,
                line_addr=line_addr, line_data=line_data,
                issued_at=request.issued_at, data_seq=seq))
        if not ops:  # zero-size with an address: single line op
            ops.append(PreExecOperation(
                pre_id=request.pre_id, thread_id=request.thread_id,
                transaction_id=request.transaction_id,
                line_addr=base, line_data=None,
                issued_at=request.issued_at))
    elif request.data is not None:
        # PRE_DATA: the object must be line-aligned (section 4.4), so
        # only whole-line chunks are pre-executable; a partial tail is
        # skipped rather than guessed at.
        for seq in range(len(request.data) // line_bytes):
            chunk = request.data[seq * line_bytes:(seq + 1) * line_bytes]
            ops.append(PreExecOperation(
                pre_id=request.pre_id, thread_id=request.thread_id,
                transaction_id=request.transaction_id,
                line_addr=None, line_data=chunk,
                issued_at=request.issued_at, data_seq=seq))
    return ops


class PreExecRequestQueue:
    """Bounded FIFO of requests with deferral and coalescing."""

    def __init__(self, sim: Simulator, capacity: int):
        self.sim = sim
        self._store = Store(sim, capacity=capacity,
                            name="pre-req-queue", drop_oldest=True)
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def dropped(self) -> int:
        return self._store.dropped

    def submit(self, request: PreExecRequest) -> bool:
        """Enqueue a request.

        Immediate requests flow straight through (the engine's pump
        consumes them).  Deferred requests wait for
        :meth:`release_deferred`; same-line deferred requests of the
        same ``pre_id`` coalesce in place.
        """
        request.issued_at = self.sim.now
        if request.deferred:
            merged = self._try_coalesce(request)
            if merged:
                self.coalesced += 1
                return True
        return self._store.put(request)

    def _try_coalesce(self, request: PreExecRequest) -> bool:
        if request.addr is None:
            return False
        for buffered in self._store.peek_all():
            if (not buffered.deferred
                    or buffered.pre_id != request.pre_id
                    or buffered.thread_id != request.thread_id
                    or buffered.addr is None):
                continue
            lo = min(buffered.addr, request.addr)
            hi = max(buffered.addr + buffered.size,
                     request.addr + request.size)
            if hi - lo <= CACHE_LINE_BYTES and \
                    align_down(lo) == align_down(hi - 1):
                # Same cache line: merge byte images.
                merged = bytearray(hi - lo)
                if buffered.data:
                    off = buffered.addr - lo
                    merged[off:off + buffered.size] = buffered.data
                if request.data:
                    off = request.addr - lo
                    merged[off:off + request.size] = request.data
                buffered.addr = lo
                buffered.size = hi - lo
                buffered.data = bytes(merged)
                return True
        return False

    def release_deferred(self, pre_id: int, thread_id: int) -> int:
        """PRE_START_BUF: mark matching buffered requests immediate.

        Returns the number of requests released.
        """
        released = 0
        for buffered in self._store.peek_all():
            if (buffered.deferred and buffered.pre_id == pre_id
                    and buffered.thread_id == thread_id):
                buffered.deferred = False
                released += 1
        return released

    def pop_ready(self) -> Optional[PreExecRequest]:
        """Dequeue the oldest non-deferred request, if any."""
        for buffered in self._store.peek_all():
            if not buffered.deferred:
                self._store.remove(buffered)
                return buffered
        return None


class PreExecOperationQueue:
    """Bounded FIFO of decoded line-sized operations."""

    def __init__(self, sim: Simulator, capacity: int):
        self.sim = sim
        self._store = Store(sim, capacity=capacity,
                            name="pre-op-queue")

    def __len__(self) -> int:
        return len(self._store)

    @property
    def dropped(self) -> int:
        return self._store.dropped

    def push(self, op: PreExecOperation) -> bool:
        return self._store.put(op)

    def get(self):
        return self._store.get()

    def pop_ready(self) -> Optional[PreExecOperation]:
        for op in self._store.peek_all():
            self._store.remove(op)
            return op
        return None
