"""Linear-scan reference IRB — the pre-index implementation.

This is the O(n)-per-operation buffer the indexed
:class:`repro.janus.irb.IntermediateResultBuffer` replaced, kept with
*identical observable semantics* (including the documented
"address match wins, most-recently-created breaks ties" rule) for two
purposes:

* the equivalence property test (``tests/test_irb_equivalence.py``)
  drives both implementations with the same randomized operation
  sequence and asserts identical behavior;
* the ``repro bench`` IRB microbenchmark measures the indexed
  implementation's speedup over this baseline at high occupancy.

It is **not** used on any simulation path.
"""

from typing import Callable, List, Optional

from repro.janus.irb import IrbEntry
from repro.obs.tracer import NULL_TRACER
from repro.sim import Simulator
from repro.sim.stats import StatSet


class LinearScanIrb:
    """Reference buffer: every operation scans the entry list."""

    def __init__(self, sim: Simulator, capacity: int,
                 max_age_ns: float = 1_000_000.0,
                 stats=None, tracer=None):
        self.sim = sim
        self.capacity = capacity
        self.max_age_ns = max_age_ns
        self._entries: List[IrbEntry] = []
        self.stats = stats if stats is not None else StatSet("irb")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Register the same base counters the indexed IRB caches, so
        # stats snapshots of the two implementations are comparable.
        for name in ("inserted", "merged", "dropped_full", "hits",
                     "misses", "consumed", "expired"):
            self.stats.counter(name)

    def __len__(self) -> int:
        return len(self._entries)

    # -- insertion ------------------------------------------------------
    def insert(self, entry: IrbEntry) -> Optional[IrbEntry]:
        self._expire_old()
        existing = self._find_mergeable(entry)
        if existing is not None:
            self._merge(existing, entry)
            self.stats.counter("merged").add()
            return existing
        if len(self._entries) >= self.capacity:
            self.stats.counter("dropped_full").add()
            return None
        entry.created_at = self.sim.now
        self._entries.append(entry)
        self.stats.counter("inserted").add()
        return entry

    def _find_mergeable(self, entry: IrbEntry) -> Optional[IrbEntry]:
        for existing in self._entries:
            if existing.key() != entry.key():
                continue
            if (existing.line_addr is not None
                    and entry.line_addr is not None):
                if existing.line_addr == entry.line_addr:
                    return existing
                continue
            if existing.data_seq == entry.data_seq:
                return existing
        return None

    @staticmethod
    def _merge(existing: IrbEntry, incoming: IrbEntry) -> None:
        existing.ctx.merge_from(incoming.ctx)
        if existing.line_addr is None:
            existing.line_addr = incoming.line_addr
        if existing.data is None:
            existing.data = incoming.data
        existing.complete = False

    # -- lookup by the arriving write -------------------------------------
    def match_write(self, thread_id: int, line_addr: int,
                    data: bytes) -> Optional[IrbEntry]:
        self._expire_old()
        best: Optional[IrbEntry] = None
        best_is_addr = False
        for entry in self._entries:
            if entry.thread_id != thread_id:
                continue
            if entry.line_addr is not None:
                if entry.line_addr == line_addr:
                    if (not best_is_addr or best is None
                            or entry.created_at >= best.created_at):
                        best = entry
                        best_is_addr = True
            elif (not best_is_addr and entry.data is not None
                    and entry.data == data):
                if best is None or entry.created_at >= best.created_at:
                    best = entry
        if best is not None:
            self.stats.counter("hits").add()
        else:
            self.stats.counter("misses").add()
        return best

    def consume(self, entry: IrbEntry) -> None:
        try:
            self._entries.remove(entry)
            self.stats.counter("consumed").add()
        except ValueError:
            pass

    # -- invalidation ------------------------------------------------------
    def invalidate_where(self, predicate: Callable[[IrbEntry], bool],
                         reason: str = "predicate") -> int:
        victims = [e for e in self._entries if predicate(e)]
        for victim in victims:
            self._entries.remove(victim)
        if victims:
            self.stats.counter(f"invalidated_{reason}").add(len(victims))
        return len(victims)

    def invalidate_line(self, line_addr: int) -> int:
        return self.invalidate_where(
            lambda e: e.line_addr == line_addr, reason="line")

    def invalidate_range(self, lo: int, hi: int) -> int:
        return self.invalidate_where(
            lambda e: e.line_addr is not None and lo <= e.line_addr < hi,
            reason="swap")

    def clear_thread(self, thread_id: int) -> int:
        return self.invalidate_where(
            lambda e: e.thread_id == thread_id, reason="thread_exit")

    # -- aging ----------------------------------------------------------------
    def _expire_old(self) -> None:
        if self.max_age_ns is None:
            return
        cutoff = self.sim.now - self.max_age_ns
        expired = [e for e in self._entries if e.created_at < cutoff]
        for entry in expired:
            self._entries.remove(entry)
        if expired:
            self.stats.counter("expired").add(len(expired))

    def entries(self) -> List[IrbEntry]:
        return list(self._entries)
