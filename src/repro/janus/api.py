"""The Janus software interface (paper Table 2).

``JanusInterface`` is what workload code calls.  Each function is a
simulator-process fragment (use ``yield from``): it charges a small
core-side issue cost and hands a :class:`PreExecRequest` to the
engine.  When the interface is disabled (serialized / parallel /
ideal modes run the *uninstrumented* program), every call is a free
no-op, so the same workload source drives every design point.

Functions:

==================  =====================================================
``PRE_INIT``        initialise a ``pre_obj`` with unique PRE_ID and the
                    current thread/transaction IDs
``PRE_BOTH``        pre-execute all sub-operations (addr + data known)
``PRE_ADDR``        pre-execute address-dependent sub-operations
``PRE_DATA``        pre-execute data-dependent sub-operations
``PRE_BOTH_VAL``    integer-value flavour for commit flags/pointers
``PRE_*_BUF``       deferred: buffer the request for coalescing
``PRE_START_BUF``   release the buffered requests of a ``pre_obj``
==================  =====================================================
"""

import itertools
from typing import Callable, Optional

from repro.janus.engine import JanusEngine
from repro.janus.queues import PreExecRequest, PreFunc
from repro.sim import Simulator

#: Fallback allocator for interfaces constructed without an owning
#: system (unit tests).  Real systems pass a per-system counter so
#: pre_ids — which appear in IRB snapshots and fuzz repro files — do
#: not depend on how many systems ran earlier in the process.
_PRE_ID_COUNTER = itertools.count(1)


class PreObj:
    """Software handle identifying a group of pre-execution requests."""

    __slots__ = ("pre_id", "thread_id", "transaction_id")

    def __init__(self) -> None:
        self.pre_id = 0
        self.thread_id = 0
        self.transaction_id = 0

    def __repr__(self) -> str:
        return (f"PreObj(pre={self.pre_id}, thread={self.thread_id}, "
                f"txn={self.transaction_id})")


class JanusInterface:
    """Per-thread binding of the Table 2 functions to the engine."""

    def __init__(self, sim: Simulator, engine: Optional[JanusEngine],
                 thread_id: int,
                 transaction_id_provider: Callable[[], int] = lambda: 0,
                 issue_cost_ns: float = 2.0,
                 pre_id_counter=None):
        self.sim = sim
        self.engine = engine
        self.thread_id = thread_id
        self._txn_id = transaction_id_provider
        self.issue_cost_ns = issue_cost_ns
        self._pre_ids = pre_id_counter if pre_id_counter is not None \
            else _PRE_ID_COUNTER
        self.calls = 0

    @property
    def enabled(self) -> bool:
        return self.engine is not None

    # -- common ------------------------------------------------------------
    def pre_init(self, obj: Optional[PreObj] = None) -> PreObj:
        """PRE_INIT: assign a unique PRE_ID plus thread/txn IDs."""
        obj = obj or PreObj()
        obj.pre_id = next(self._pre_ids)
        obj.thread_id = self.thread_id
        obj.transaction_id = self._txn_id()
        return obj

    def _issue(self, obj: PreObj, func: PreFunc, addr, data, size,
               deferred: bool):
        if not self.enabled:
            return
        self.calls += 1
        yield self.sim.delay(self.issue_cost_ns)
        self.engine.submit(PreExecRequest(
            pre_id=obj.pre_id, thread_id=obj.thread_id,
            transaction_id=obj.transaction_id, func=func,
            addr=addr, data=bytes(data) if data is not None else None,
            size=size, deferred=deferred))

    # -- immediate execution ---------------------------------------------
    def pre_both(self, obj: PreObj, addr: int, data: bytes,
                 size: Optional[int] = None):
        """PRE_BOTH: pre-execute everything for [addr, addr+size)."""
        yield from self._issue(obj, PreFunc.BOTH, addr, data,
                               size if size is not None else len(data),
                               deferred=False)

    def pre_addr(self, obj: PreObj, addr: int, size: int):
        """PRE_ADDR: pre-execute address-dependent sub-operations."""
        yield from self._issue(obj, PreFunc.ADDR, addr, None, size,
                               deferred=False)

    def pre_data(self, obj: PreObj, data: bytes):
        """PRE_DATA: pre-execute data-dependent sub-operations.

        The data block must be cache-line-aligned (§4.4 guideline 2);
        the decoder enforces this by only acting on whole-line chunks.
        """
        yield from self._issue(obj, PreFunc.DATA, None, data, len(data),
                               deferred=False)

    def pre_both_val(self, obj: PreObj, addr: int, value: int,
                     line_image: Optional[bytes] = None):
        """PRE_BOTH_VAL: integer-valued variant for commit records.

        ``line_image``, when given, is the full 64-byte image the line
        will hold (commit records in the workloads are line-sized, so
        the image is statically known); otherwise only the address
        part is usable.
        """
        data = line_image
        if data is None:
            data = value.to_bytes(8, "little", signed=True)
        yield from self._issue(obj, PreFunc.BOTH_VAL, addr, data,
                               len(data), deferred=False)

    # -- deferred execution --------------------------------------------------
    def pre_both_buf(self, obj: PreObj, addr: int, data: bytes,
                     size: Optional[int] = None):
        """PRE_BOTH_BUF: buffer for coalescing; run at PRE_START_BUF."""
        yield from self._issue(obj, PreFunc.BOTH, addr, data,
                               size if size is not None else len(data),
                               deferred=True)

    def pre_addr_buf(self, obj: PreObj, addr: int, size: int):
        yield from self._issue(obj, PreFunc.ADDR, addr, None, size,
                               deferred=True)

    def pre_data_buf(self, obj: PreObj, data: bytes):
        yield from self._issue(obj, PreFunc.DATA, None, data, len(data),
                               deferred=True)

    def pre_start_buf(self, obj: PreObj):
        """PRE_START_BUF: release this object's buffered requests."""
        if not self.enabled:
            return
        yield self.sim.delay(self.issue_cost_ns)
        self.engine.start_buffered(obj.pre_id, self.thread_id)

    # -- lifecycle -----------------------------------------------------------
    def thread_exit(self) -> None:
        """Clear this thread's IRB entries (§4.6)."""
        if self.enabled:
            self.engine.clear_thread(self.thread_id)
