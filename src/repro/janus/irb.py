"""The Intermediate Result Buffer (IRB).

The IRB lives in the memory controller and holds the outputs of
pre-executed sub-operations, keyed by ``(ThreadID, PRE_ID,
TransactionID)`` and the physical line address (paper Fig. 7c).  Its
contract (§3.2, §4.3.1):

1. pre-execution results never touch processor/memory state — they
   stay in IRB entries (here: a :class:`repro.bmo.base.BmoContext`);
2. stale results are detected and invalidated — via the stored data
   copy (compared against the arriving write) and via metadata-change
   notifications from the BMOs;
3. bounded capacity: newer insertions are dropped when full (§4.3.2);
4. entries age out, and a terminating thread's entries are cleared
   (§4.6).

Every operation on the write critical path is index-backed instead of
scanning the buffer (the hardware analogue is a CAM; see
``docs/performance.md``):

* ``_order`` — insertion-ordered dict of resident entries.  Because
  simulation time is monotone, insertion order *is* ``created_at``
  order, so aging pops expired entries from the front in O(expired).
* ``_by_key`` — ``key() -> entries`` for O(bucket) merge lookup.
* ``_by_thread_line`` — ``(thread_id, line_addr) -> entries`` so an
  arriving write's address match is a dict probe plus a scan of the
  (tiny) bucket, picking the highest ``link_seq`` — merges can append
  older entries to a bucket, so bucket order alone is not creation
  order.
* ``_data_only`` — per-thread address-less entries for the byte-compare
  fallback match.
* ``_by_line`` / ``_by_thread`` — invalidation indexes for
  ``invalidate_line`` and ``clear_thread``.

The inner ``Dict[IrbEntry, None]`` buckets are insertion-ordered sets
with O(1) add/remove (``IrbEntry`` hashes by identity).  A
linear-scan reference implementation with identical semantics is kept
in :mod:`repro.janus.irb_linear` for the equivalence property test and
the ``repro bench`` microbenchmark.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bmo.base import BmoContext
from repro.obs.tracer import NULL_TRACER
from repro.sim import Simulator
from repro.sim.stats import StatSet


@dataclass(eq=False)
class IrbEntry:
    """One line-granularity pre-execution result.

    Entries compare (and hash) by identity: two buffer slots holding
    equal field values are still distinct slots.
    """

    pre_id: int
    thread_id: int
    transaction_id: int
    line_addr: Optional[int]
    #: Copy of the data used for pre-execution (None for addr-only).
    data: Optional[bytes]
    ctx: BmoContext = field(default_factory=BmoContext)
    created_at: float = 0.0
    #: Complete bit: all sub-ops runnable with the entry's inputs done.
    complete: bool = False
    #: Event that fires when in-flight pre-execution finishes.
    inflight: Optional[object] = field(default=None, repr=False)
    #: For address-less data entries: ordinal within the request.
    data_seq: int = 0
    #: Insertion rank assigned by the indexed buffer at link time —
    #: the entry's position in the linear reference's list.  A merge
    #: re-files an entry under new index keys but never changes it.
    link_seq: int = field(default=0, repr=False)

    def key(self) -> Tuple[int, int, int]:
        return (self.thread_id, self.pre_id, self.transaction_id)


#: An insertion-ordered set of entries (dict keys, values unused).
_EntrySet = Dict[IrbEntry, None]


class IntermediateResultBuffer:
    """Bounded, fully indexed buffer of :class:`IrbEntry`."""

    #: Trace track shared by all IRB events.
    TRACK = ("janus", "irb")

    def __init__(self, sim: Simulator, capacity: int,
                 max_age_ns: float = 1_000_000.0,
                 stats=None, tracer=None):
        self.sim = sim
        self.capacity = capacity
        self.max_age_ns = max_age_ns
        self.stats = stats if stats is not None else StatSet("irb")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # -- indexes (see module docstring) --
        self._order: _EntrySet = {}
        self._by_key: Dict[Tuple[int, int, int], _EntrySet] = {}
        self._by_thread_line: Dict[Tuple[int, int], _EntrySet] = {}
        self._data_only: Dict[int, _EntrySet] = {}
        self._by_line: Dict[int, _EntrySet] = {}
        self._by_thread: Dict[int, _EntrySet] = {}
        #: Monotone link counter backing ``IrbEntry.link_seq``.
        self._link_seq = 0
        # -- hot metric handles: resolved once, not per write --
        self._c_inserted = self.stats.counter("inserted")
        self._c_merged = self.stats.counter("merged")
        self._c_dropped_full = self.stats.counter("dropped_full")
        self._c_hits = self.stats.counter("hits")
        self._c_misses = self.stats.counter("misses")
        self._c_consumed = self.stats.counter("consumed")
        self._c_expired = self.stats.counter("expired")
        self._c_invalidated: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._order)

    # -- index maintenance ---------------------------------------------
    def _link(self, entry: IrbEntry) -> None:
        self._link_seq += 1
        entry.link_seq = self._link_seq
        self._order[entry] = None
        self._by_key.setdefault(entry.key(), {})[entry] = None
        self._by_thread.setdefault(entry.thread_id, {})[entry] = None
        if entry.line_addr is not None:
            self._by_thread_line.setdefault(
                (entry.thread_id, entry.line_addr), {})[entry] = None
            self._by_line.setdefault(entry.line_addr, {})[entry] = None
        else:
            self._data_only.setdefault(entry.thread_id, {})[entry] = None

    def _unlink(self, entry: IrbEntry) -> None:
        del self._order[entry]
        self._drop_from(self._by_key, entry.key(), entry)
        self._drop_from(self._by_thread, entry.thread_id, entry)
        if entry.line_addr is not None:
            self._drop_from(self._by_thread_line,
                            (entry.thread_id, entry.line_addr), entry)
            self._drop_from(self._by_line, entry.line_addr, entry)
        else:
            self._drop_from(self._data_only, entry.thread_id, entry)

    @staticmethod
    def _drop_from(index: Dict, key, entry: IrbEntry) -> None:
        bucket = index.get(key)
        if bucket is not None and entry in bucket:
            del bucket[entry]
            if not bucket:
                del index[key]

    # -- insertion ------------------------------------------------------
    def insert(self, entry: IrbEntry) -> Optional[IrbEntry]:
        """Add an entry; returns the entry that now owns its results.

        An entry with the same key and line address *merges* instead —
        that is how a ``PRE_ADDR`` and a ``PRE_DATA`` of the same
        ``pre_obj`` combine their results — in which case the existing
        (merged-into) entry is returned.  Returns ``None`` when the
        buffer is full and the entry was dropped (§4.3.2).
        """
        self._expire_old()
        existing = self._find_mergeable(entry)
        if existing is not None:
            self._merge(existing, entry)
            self._c_merged.add()
            return existing
        if len(self._order) >= self.capacity:
            self._c_dropped_full.add()
            if self.tracer.enabled:
                self.tracer.instant("irb-drop-full", "irb", self.TRACK,
                                    self.sim.now)
            return None
        entry.created_at = self.sim.now
        self._link(entry)
        self._c_inserted.add()
        if self.tracer.enabled:
            self.tracer.instant(
                "irb-insert", "irb", self.TRACK, self.sim.now,
                args={"line_addr": entry.line_addr,
                      "occupancy": len(self._order)})
        return entry

    def _find_mergeable(self, entry: IrbEntry) -> Optional[IrbEntry]:
        bucket = self._by_key.get(entry.key())
        if not bucket:
            return None
        for existing in bucket:
            if (existing.line_addr is not None
                    and entry.line_addr is not None):
                if existing.line_addr == entry.line_addr:
                    return existing
                continue
            # One side lacks an address: pair by data ordinal.
            if existing.data_seq == entry.data_seq:
                return existing
        return None

    def _merge(self, existing: IrbEntry, incoming: IrbEntry) -> None:
        existing.ctx.merge_from(incoming.ctx)
        if existing.line_addr is None and incoming.line_addr is not None:
            # The entry gains its address: move it from the data-only
            # index to the address indexes.
            self._drop_from(self._data_only, existing.thread_id, existing)
            existing.line_addr = incoming.line_addr
            self._by_thread_line.setdefault(
                (existing.thread_id, existing.line_addr), {})[existing] = None
            self._by_line.setdefault(
                existing.line_addr, {})[existing] = None
        if existing.data is None:
            existing.data = incoming.data
        existing.complete = False  # more work may now be runnable

    # -- lookup by the arriving write -------------------------------------
    def match_write(self, thread_id: int, line_addr: int,
                    data: bytes) -> Optional[IrbEntry]:
        """Find the pre-execution result for an arriving write access.

        Primary key is the physical line address (paper step 5): an
        address match always beats an address-less data-only match.
        Within each class, the most-recently-created entry wins; an
        address-less data-only entry of the same thread matches by
        byte comparison only when no address match exists.
        """
        self._expire_old()
        best: Optional[IrbEntry] = None
        bucket = self._by_thread_line.get((thread_id, line_addr))
        if bucket:
            # Bucket order is NOT creation order: a data-only entry
            # that gains its address via _merge is appended here after
            # younger entries while keeping its older created_at.
            # link_seq is the linear reference's list position, in
            # which created_at is nondecreasing — so the highest rank
            # is the newest entry, ties broken by insertion order
            # exactly as the reference scan does.  Buckets are small.
            for candidate in bucket:
                if best is None or candidate.link_seq > best.link_seq:
                    best = candidate
        else:
            data_bucket = self._data_only.get(thread_id)
            if data_bucket:
                for entry in reversed(data_bucket):
                    if entry.data is not None and entry.data == data:
                        best = entry
                        break
        if best is not None:
            self._c_hits.add()
        else:
            self._c_misses.add()
        if self.tracer.enabled:
            self.tracer.instant(
                "irb-hit" if best is not None else "irb-miss", "irb",
                self.TRACK, self.sim.now,
                args={"line_addr": line_addr, "thread": thread_id})
        return best

    def consume(self, entry: IrbEntry) -> None:
        """Remove an entry whose results were used by a write."""
        if entry in self._order:
            self._unlink(entry)
            self._c_consumed.add()

    # -- invalidation ------------------------------------------------------
    def _invalidate(self, victims: List[IrbEntry], reason: str) -> int:
        for victim in victims:
            self._unlink(victim)
        if victims:
            counter = self._c_invalidated.get(reason)
            if counter is None:
                counter = self.stats.counter(f"invalidated_{reason}")
                self._c_invalidated[reason] = counter
            counter.add(len(victims))
            if self.tracer.enabled:
                self.tracer.instant(
                    "irb-invalidate", "irb", self.TRACK, self.sim.now,
                    args={"reason": reason, "count": len(victims)})
        return len(victims)

    def invalidate_where(self, predicate: Callable[[IrbEntry], bool],
                         reason: str = "predicate") -> int:
        """Drop entries matching ``predicate``; returns the count.

        Generic slow path (full scan) — rare events only.  The hot
        invalidation causes have dedicated index-backed entry points
        (:meth:`invalidate_line`, :meth:`clear_thread`).
        """
        return self._invalidate(
            [e for e in self._order if predicate(e)], reason)

    def invalidate_line(self, line_addr: int) -> int:
        """A store to ``line_addr`` happened outside this entry's
        write (cache-line sharing / buggy program, §4.3.1 cause 1)."""
        bucket = self._by_line.get(line_addr)
        return self._invalidate(list(bucket) if bucket else [], "line")

    def invalidate_range(self, lo: int, hi: int) -> int:
        """Memory swap: clear entries in the swapped range (§4.6)."""
        return self.invalidate_where(
            lambda e: e.line_addr is not None and lo <= e.line_addr < hi,
            reason="swap")

    def clear_thread(self, thread_id: int) -> int:
        """Thread termination clears its entries (§4.6)."""
        bucket = self._by_thread.get(thread_id)
        return self._invalidate(list(bucket) if bucket else [],
                                "thread_exit")

    def on_metadata_change(self, bmo_name: str, details: dict) -> None:
        """Invalidation hook the BMOs call when shared metadata moves
        (§4.3.1 cause 2 — e.g. a deduplicated source value changed)."""
        fingerprint = details.get("fingerprint")
        if fingerprint is None:
            return
        self.invalidate_where(
            lambda e: e.ctx.values.get("fingerprint") == fingerprint
            or (e.ctx.values.get("is_dup")
                and e.ctx.values.get("fingerprint") == fingerprint),
            reason="metadata")

    # -- aging ----------------------------------------------------------------
    def _expire_old(self) -> None:
        if self.max_age_ns is None or not self._order:
            return
        cutoff = self.sim.now - self.max_age_ns
        expired = 0
        # ``_order`` is created_at-ordered (time is monotone), so the
        # oldest entry is always first: stop at the first survivor.
        while self._order:
            entry = next(iter(self._order))
            if entry.created_at >= cutoff:
                break
            self._unlink(entry)
            expired += 1
        if expired:
            self._c_expired.add(expired)

    def entries(self) -> List[IrbEntry]:
        return list(self._order)
