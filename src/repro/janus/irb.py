"""The Intermediate Result Buffer (IRB).

The IRB lives in the memory controller and holds the outputs of
pre-executed sub-operations, keyed by ``(ThreadID, PRE_ID,
TransactionID)`` and the physical line address (paper Fig. 7c).  Its
contract (§3.2, §4.3.1):

1. pre-execution results never touch processor/memory state — they
   stay in IRB entries (here: a :class:`repro.bmo.base.BmoContext`);
2. stale results are detected and invalidated — via the stored data
   copy (compared against the arriving write) and via metadata-change
   notifications from the BMOs;
3. bounded capacity: newer insertions are dropped when full (§4.3.2);
4. entries age out, and a terminating thread's entries are cleared
   (§4.6).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bmo.base import BmoContext
from repro.obs.tracer import NULL_TRACER
from repro.sim import Simulator
from repro.sim.stats import StatSet


@dataclass
class IrbEntry:
    """One line-granularity pre-execution result."""

    pre_id: int
    thread_id: int
    transaction_id: int
    line_addr: Optional[int]
    #: Copy of the data used for pre-execution (None for addr-only).
    data: Optional[bytes]
    ctx: BmoContext = field(default_factory=BmoContext)
    created_at: float = 0.0
    #: Complete bit: all sub-ops runnable with the entry's inputs done.
    complete: bool = False
    #: Event that fires when in-flight pre-execution finishes.
    inflight = None
    #: For address-less data entries: ordinal within the request.
    data_seq: int = 0

    def key(self) -> Tuple[int, int, int]:
        return (self.thread_id, self.pre_id, self.transaction_id)


class IntermediateResultBuffer:
    """Bounded buffer of :class:`IrbEntry` with invalidation logic."""

    #: Trace track shared by all IRB events.
    TRACK = ("janus", "irb")

    def __init__(self, sim: Simulator, capacity: int,
                 max_age_ns: float = 1_000_000.0,
                 stats=None, tracer=None):
        self.sim = sim
        self.capacity = capacity
        self.max_age_ns = max_age_ns
        self._entries: List[IrbEntry] = []
        self.stats = stats if stats is not None else StatSet("irb")
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def __len__(self) -> int:
        return len(self._entries)

    # -- insertion ------------------------------------------------------
    def insert(self, entry: IrbEntry) -> bool:
        """Add an entry; returns False (dropped) when full.

        An entry with the same key and line address *merges* instead —
        that is how a ``PRE_ADDR`` and a ``PRE_DATA`` of the same
        ``pre_obj`` combine their results.
        """
        self._expire_old()
        existing = self._find_mergeable(entry)
        if existing is not None:
            self._merge(existing, entry)
            self.stats.counter("merged").add()
            return True
        if len(self._entries) >= self.capacity:
            self.stats.counter("dropped_full").add()
            if self.tracer.enabled:
                self.tracer.instant("irb-drop-full", "irb", self.TRACK,
                                    self.sim.now)
            return False
        entry.created_at = self.sim.now
        self._entries.append(entry)
        self.stats.counter("inserted").add()
        if self.tracer.enabled:
            self.tracer.instant(
                "irb-insert", "irb", self.TRACK, self.sim.now,
                args={"line_addr": entry.line_addr,
                      "occupancy": len(self._entries)})
        return True

    def _find_mergeable(self, entry: IrbEntry) -> Optional[IrbEntry]:
        for existing in self._entries:
            if existing.key() != entry.key():
                continue
            if (existing.line_addr is not None
                    and entry.line_addr is not None):
                if existing.line_addr == entry.line_addr:
                    return existing
                continue
            # One side lacks an address: pair by data ordinal.
            if existing.data_seq == entry.data_seq:
                return existing
        return None

    @staticmethod
    def _merge(existing: IrbEntry, incoming: IrbEntry) -> None:
        existing.ctx.merge_from(incoming.ctx)
        if existing.line_addr is None:
            existing.line_addr = incoming.line_addr
        if existing.data is None:
            existing.data = incoming.data
        existing.complete = False  # more work may now be runnable

    # -- lookup by the arriving write -------------------------------------
    def match_write(self, thread_id: int, line_addr: int,
                    data: bytes) -> Optional[IrbEntry]:
        """Find the pre-execution result for an arriving write access.

        Primary key is the physical line address (paper step 5); an
        address-less data-only entry of the same thread matches by
        byte comparison.  Most-recently-created entry wins.
        """
        self._expire_old()
        best: Optional[IrbEntry] = None
        for entry in self._entries:
            if entry.thread_id != thread_id:
                continue
            if entry.line_addr is not None:
                if entry.line_addr == line_addr:
                    if best is None or entry.created_at >= best.created_at:
                        best = entry
            elif entry.data is not None and entry.data == data:
                if best is None:
                    best = entry
        if best is not None:
            self.stats.counter("hits").add()
        else:
            self.stats.counter("misses").add()
        if self.tracer.enabled:
            self.tracer.instant(
                "irb-hit" if best is not None else "irb-miss", "irb",
                self.TRACK, self.sim.now,
                args={"line_addr": line_addr, "thread": thread_id})
        return best

    def consume(self, entry: IrbEntry) -> None:
        """Remove an entry whose results were used by a write."""
        try:
            self._entries.remove(entry)
            self.stats.counter("consumed").add()
        except ValueError:
            pass

    # -- invalidation ------------------------------------------------------
    def invalidate_where(self, predicate: Callable[[IrbEntry], bool],
                         reason: str = "predicate") -> int:
        """Drop entries matching ``predicate``; returns the count."""
        victims = [e for e in self._entries if predicate(e)]
        for victim in victims:
            self._entries.remove(victim)
        if victims:
            self.stats.counter(f"invalidated_{reason}").add(len(victims))
            if self.tracer.enabled:
                self.tracer.instant(
                    "irb-invalidate", "irb", self.TRACK, self.sim.now,
                    args={"reason": reason, "count": len(victims)})
        return len(victims)

    def invalidate_line(self, line_addr: int) -> int:
        """A store to ``line_addr`` happened outside this entry's
        write (cache-line sharing / buggy program, §4.3.1 cause 1)."""
        return self.invalidate_where(
            lambda e: e.line_addr == line_addr, reason="line")

    def invalidate_range(self, lo: int, hi: int) -> int:
        """Memory swap: clear entries in the swapped range (§4.6)."""
        return self.invalidate_where(
            lambda e: e.line_addr is not None and lo <= e.line_addr < hi,
            reason="swap")

    def clear_thread(self, thread_id: int) -> int:
        """Thread termination clears its entries (§4.6)."""
        return self.invalidate_where(
            lambda e: e.thread_id == thread_id, reason="thread_exit")

    def on_metadata_change(self, bmo_name: str, details: dict) -> None:
        """Invalidation hook the BMOs call when shared metadata moves
        (§4.3.1 cause 2 — e.g. a deduplicated source value changed)."""
        fingerprint = details.get("fingerprint")
        if fingerprint is None:
            return
        self.invalidate_where(
            lambda e: e.ctx.values.get("fingerprint") == fingerprint
            or (e.ctx.values.get("is_dup")
                and e.ctx.values.get("fingerprint") == fingerprint),
            reason="metadata")

    # -- aging ----------------------------------------------------------------
    def _expire_old(self) -> None:
        if self.max_age_ns is None:
            return
        cutoff = self.sim.now - self.max_age_ns
        expired = [e for e in self._entries if e.created_at < cutoff]
        for entry in expired:
            self._entries.remove(entry)
        if expired:
            self.stats.counter("expired").add(len(expired))

    def entries(self) -> List[IrbEntry]:
        return list(self._entries)
