"""The Janus engine: queues -> decoder -> optimized BMO logic -> IRB.

``JanusEngine`` implements the hardware datapath of paper Fig. 7:

* :meth:`submit` (step 1) takes software pre-execution requests;
* the pump decodes them into line-sized operations (step 2) and
  admits them to the operation queue (step 3);
* each admitted operation pre-executes whatever sub-operations its
  available inputs allow, on the shared BMO units, writing results
  into an IRB entry (step 4);
* :meth:`service_write` (step 5) is called by the memory controller
  when the actual write arrives: it matches the IRB, validates the
  stored data copy, waits for in-flight pre-execution, refreshes any
  stale sub-operations, and returns a commit-ready context.
"""

from repro.bmo.base import BmoContext, ExternalInput
from repro.bmo.executor import BmoExecutor
from repro.bmo.pipeline import BmoPipeline
from repro.common.config import JanusConfig
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.queues import (
    PreExecOperation,
    PreExecOperationQueue,
    PreExecRequest,
    PreExecRequestQueue,
    decode_request,
)
from repro.obs.tracer import NULL_TRACER
from repro.sim import Simulator
from repro.sim.stats import StatSet


class JanusEngine:
    """Pre-execution datapath shared by all cores."""

    def __init__(self, sim: Simulator, pipeline: BmoPipeline,
                 executor: BmoExecutor, config: JanusConfig,
                 cores: int = 1, metrics=None, tracer=None,
                 scope: str = "janus", irb_scope: str = "irb",
                 owns=None):
        self.sim = sim
        self.pipeline = pipeline
        self.executor = executor
        self.cfg = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Shard ownership predicate (``line_addr -> bool``).  ``None``
        #: on the unsharded machine; the sharded machine sets it so
        #: each shard's engine only admits operations for lines it
        #: owns — a multi-line request spanning shards is decoded by
        #: every engine it touches, each keeping its own slice.
        self.owns = owns
        self.request_queue = PreExecRequestQueue(
            sim, capacity=config.scaled("request_queue_entries") * cores)
        self.operation_queue = PreExecOperationQueue(
            sim, capacity=config.scaled("operation_queue_entries") * cores)
        self.irb = IntermediateResultBuffer(
            sim, capacity=config.scaled("irb_entries") * cores,
            max_age_ns=config.irb_max_age_ns,
            stats=metrics.scope(irb_scope) if metrics is not None
            else None,
            tracer=self.tracer)
        self._inflight_ops = 0
        #: Optional ``repro.faults.FaultInjector``: notified when an
        #: IRB entry's pre-execution completes, so campaigns can
        #: corrupt buffered results and prove invalidation catches
        #: them (stale results must never be silently consumed).
        self.injector = None
        self.stats = metrics.scope(scope) if metrics is not None \
            else StatSet("janus")
        # Hot metric handles: one registry lookup at construction
        # instead of a string-keyed dict probe per write/admit.
        self._c_requests = self.stats.counter("requests")
        self._c_ops_admitted = self.stats.counter("ops_admitted")
        self._c_ops_dropped_full = self.stats.counter("ops_dropped_full")
        self._c_subops_pre_executed = \
            self.stats.counter("subops_pre_executed")
        self._c_inflight_waits = self.stats.counter("inflight_waits")
        self._h_window_shortfall = \
            self.stats.histogram("window_shortfall_ns")
        self._c_data_mismatches = self.stats.counter("data_mismatches")
        self._c_fully_pre_executed = \
            self.stats.counter("fully_pre_executed")
        self._c_partially_pre_executed = \
            self.stats.counter("partially_pre_executed")
        # Subscribe the IRB to metadata-change notifications (§4.3.1).
        for bmo in pipeline.bmos:
            bmo.invalidation_hooks.append(self.irb.on_metadata_change)

    # -- software-facing entry points (via JanusInterface) ---------------
    def submit(self, request: PreExecRequest) -> None:
        """Step 1: enqueue a request and pump the pipeline."""
        self._c_requests.add()
        self.request_queue.submit(request)
        self._pump()

    def start_buffered(self, pre_id: int, thread_id: int) -> int:
        """PRE_START_BUF: release deferred requests, then pump."""
        released = self.request_queue.release_deferred(pre_id, thread_id)
        self._pump()
        return released

    def clear_thread(self, thread_id: int) -> None:
        """Thread termination clears its IRB entries (§4.6)."""
        self.irb.clear_thread(thread_id)

    def on_memory_swap(self, lo: int, hi: int) -> None:
        """OS swapped [lo, hi) out: drop affected entries (§4.6)."""
        self.irb.invalidate_range(lo, hi)

    # -- decode and admit -------------------------------------------------
    def _pump(self) -> None:
        while True:
            request = self.request_queue.pop_ready()
            if request is None:
                return
            for op in decode_request(request):
                self._admit(op)

    def _admit(self, op: PreExecOperation) -> None:
        if self.owns is not None and op.line_addr is not None \
                and not self.owns(op.line_addr):
            # Sharded machine: this line belongs to another shard's
            # controller; its engine admits the operation instead.
            return
        capacity = self.operation_queue._store.capacity
        if capacity is not None and self._inflight_ops >= capacity:
            self._c_ops_dropped_full.add()
            return
        entry = IrbEntry(
            pre_id=op.pre_id, thread_id=op.thread_id,
            transaction_id=op.transaction_id,
            line_addr=op.line_addr, data=op.line_data,
            ctx=self.pipeline.make_context(addr=op.line_addr,
                                           data=op.line_data),
            data_seq=op.data_seq)
        # ``insert`` returns the entry that owns this line's context —
        # the new entry, or the existing one it merged into.
        target = self.irb.insert(entry)
        if target is None:
            return  # IRB full: drop (performance-only loss)
        self._c_ops_admitted.add()
        self._inflight_ops += 1
        self.sim.process(self._pre_execute(target), name="janus-preexec")

    # -- step 3/4: optimized BMO logic + IRB fill ----------------------------
    def _pre_execute(self, entry: IrbEntry):
        try:
            # Serialize per-entry work: a merge may extend an entry
            # whose earlier sub-ops are still executing.
            while entry.inflight is not None:
                yield entry.inflight
            done_event = self.sim.event("irb-entry-complete")
            entry.inflight = done_event
            ctx = entry.ctx
            runnable = [
                name for name in
                self.pipeline.graph.runnable_with(ctx.available_inputs)
                if name not in ctx.completed]
            if runnable:
                pre_start = self.sim.now
                yield from self.executor.run_subops(ctx, runnable)
                self._c_subops_pre_executed.add(len(runnable))
                if self.tracer.enabled:
                    self.tracer.complete(
                        "pre-execute", "janus", ("janus", "pre-exec"),
                        start_ns=pre_start,
                        dur_ns=self.sim.now - pre_start,
                        args={"line_addr": entry.line_addr,
                              "subops": len(runnable)})
            entry.complete = True
            entry.inflight = None
            if self.injector is not None:
                self.injector.on_irb_complete(entry)
            done_event.succeed()
        finally:
            self._inflight_ops -= 1

    # -- step 5: the actual write arrives -----------------------------------
    def service_write(self, thread_id: int, line_addr: int, data: bytes):
        """Process: produce a commit-ready context for this write.

        Yields until all (remaining) sub-operations have executed.
        Returns ``(ctx, fully_pre_executed)``.
        """
        entry = self.irb.match_write(thread_id, line_addr, data)
        if entry is None:
            ctx = self.pipeline.make_context(addr=line_addr, data=data)
            yield from self.executor.run_subops(ctx)
            return ctx, False

        if entry.inflight is not None:
            # The write arrived before its pre-execution finished —
            # the program left an insufficient window (§4.4 guideline
            # 3).  Record the shortfall for the misuse detector.
            wait_start = self.sim.now
            yield entry.inflight
            self._c_inflight_waits.add()
            self._h_window_shortfall.observe(self.sim.now - wait_start)
            if self.tracer.enabled:
                self.tracer.complete(
                    "inflight-wait", "janus",
                    ("write-path", f"core{thread_id}"),
                    start_ns=wait_start,
                    dur_ns=self.sim.now - wait_start,
                    args={"line_addr": line_addr})
        self.irb.consume(entry)
        ctx = entry.ctx

        if entry.data is not None and entry.data != data:
            # Stale data copy (§4.3.1 cause 1): every data-dependent
            # result must be recomputed with the fresh bytes.
            self._c_data_mismatches.add()
            graph = self.pipeline.graph
            data_dependent = {
                name for name in ctx.completed
                if ExternalInput.DATA in graph.external_requirements(name)}
            self.pipeline.invalidate(ctx, data_dependent)
        ctx.addr = line_addr
        ctx.data = data

        fully = (not self.pipeline.stale_subops(ctx)
                 and set(ctx.completed) == set(self.pipeline.graph.subops))
        if fully:
            self._c_fully_pre_executed.add()
        else:
            self._c_partially_pre_executed.add()
        yield from self.executor.refresh_and_complete(ctx)
        return ctx, fully
