"""Interface-misuse detection (paper §6, "Tools for misuse detection").

The paper lists three misuse patterns that cannot break correctness —
the hardware guards that — but silently waste performance:

1. **modified pre-execution objects** — the address/data given to a
   ``PRE_*`` call changed before the actual write, invalidating the
   buffered results (detected here from the IRB's data-mismatch and
   metadata-invalidation counters);
2. **useless pre-execution** — requests whose results were never
   consumed by a write (dropped on full queues, aged out of the IRB,
   or left behind at thread exit);
3. **insufficient pre-execution window** — the write arrived before
   its pre-execution completed, so part of the BMO latency stayed on
   the critical path (detected from the engine's in-flight-wait
   statistics).

``diagnose`` turns a finished Janus-mode system into a
:class:`MisuseReport` of findings, each with the § 4.4 guideline it
violates and a suggested remedy.
"""

from dataclasses import dataclass, field
from typing import List


@dataclass
class Finding:
    """One detected misuse pattern."""

    kind: str          # "stale-input" | "useless" | "short-window"
    count: int
    detail: str
    guideline: str
    severity: str      # "info" | "warn"

    def render(self) -> str:
        return (f"[{self.severity}] {self.kind} x{self.count}: "
                f"{self.detail}\n         guideline: {self.guideline}")


@dataclass
class MisuseReport:
    """All findings from one run, plus headline efficiency numbers."""

    findings: List[Finding] = field(default_factory=list)
    requests: int = 0
    consumed: int = 0
    #: Ops that merged into an existing IRB entry (a PRE_ADDR pairing
    #: with its PRE_DATA): their work was used via the merged entry.
    merged: int = 0

    @property
    def clean(self) -> bool:
        return not any(f.severity == "warn" for f in self.findings)

    @property
    def waste_ratio(self) -> float:
        """Fraction of issued line-ops whose results went unused."""
        if self.requests == 0:
            return 0.0
        used = self.consumed + self.merged
        return max(0.0, 1.0 - used / self.requests)

    def render(self) -> str:
        lines = [
            "Janus interface misuse report",
            f"  line-ops issued: {self.requests}, consumed by writes: "
            f"{self.consumed} (waste {self.waste_ratio * 100:.0f}%)",
        ]
        if not self.findings:
            lines.append("  no misuse detected")
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)


def diagnose(system, waste_threshold: float = 0.25,
             shortfall_threshold_ns: float = 50.0) -> MisuseReport:
    """Analyze a finished Janus-mode :class:`NvmSystem` run."""
    engine = system.janus
    if engine is None:
        return MisuseReport()
    stats = engine.stats
    irb_stats = engine.irb.stats

    def counter(bag, name):
        return bag.counters[name].value if name in bag.counters else 0

    report = MisuseReport(
        requests=counter(stats, "ops_admitted"),
        consumed=counter(irb_stats, "consumed"),
        merged=counter(irb_stats, "merged"),
    )

    # 1. stale inputs (paper misuse 1: modifications on the object).
    mismatches = counter(stats, "data_mismatches")
    if mismatches:
        report.findings.append(Finding(
            kind="stale-input", count=mismatches,
            detail="writes arrived with different data than was "
                   "pre-executed; data-dependent sub-operations were "
                   "recomputed on the critical path",
            guideline="do not update the location (or its cache line) "
                      "between the PRE_* call and the actual write "
                      "(§4.4 guideline 1)",
            severity="warn"))
    invalidated = sum(
        c.value for name, c in irb_stats.counters.items()
        if name.startswith("invalidated_"))
    if invalidated:
        report.findings.append(Finding(
            kind="stale-input", count=invalidated,
            detail="IRB entries invalidated by metadata changes "
                   "(e.g. a deduplicated source value was overwritten)",
            guideline="pre-execute closer to the write when the data "
                      "is hot, or accept the loss — correctness is "
                      "unaffected (§4.3.1)",
            severity="info"))

    # 2. useless pre-execution (paper misuse 2).
    dropped = (counter(stats, "ops_dropped_full")
               + counter(irb_stats, "dropped_full")
               + engine.request_queue.dropped
               + engine.operation_queue.dropped)
    if dropped:
        report.findings.append(Finding(
            kind="useless", count=dropped,
            detail="pre-execution requests dropped on full "
                   "queues/buffers before producing usable results",
            guideline="issue fewer or later requests, or provision "
                      "more IRB/queue entries (§4.6, Fig. 14)",
            severity="warn" if dropped > report.requests * 0.1
            else "info"))
    expired = counter(irb_stats, "expired")
    leftover = len(engine.irb)
    if expired or leftover:
        report.findings.append(Finding(
            kind="useless", count=expired + leftover,
            detail="pre-executed results aged out or were never "
                   "matched by a write",
            guideline="every PRE_* call should pair with a subsequent "
                      "blocking writeback of the same object (§6, "
                      "misuse 2)",
            severity="warn" if (expired + leftover) > 0.1 *
            max(1, report.requests) else "info"))
    if report.waste_ratio > waste_threshold:
        report.findings.append(Finding(
            kind="useless", count=report.requests - report.consumed,
            detail=f"{report.waste_ratio * 100:.0f}% of issued "
                   "line-ops never served a write",
            guideline="audit instrumentation placement (§4.4)",
            severity="warn"))

    # 3. insufficient window (paper misuse 3).
    waits = counter(stats, "inflight_waits")
    if waits:
        shortfall = stats.histograms["window_shortfall_ns"]
        severity = "warn" if shortfall.mean > shortfall_threshold_ns \
            else "info"
        report.findings.append(Finding(
            kind="short-window", count=waits,
            detail=f"writes waited a mean {shortfall.mean:.0f} ns "
                   f"(max {shortfall.max:.0f} ns) for their own "
                   "pre-execution to finish",
            guideline="place the pre-execution call farther from the "
                      "write — after the last update of the location "
                      "(§4.4 guideline 3)",
            severity=severity))
    return report
