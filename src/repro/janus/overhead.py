"""Hardware overhead accounting (paper §5.2.7).

Reproduces the storage arithmetic of the paper from the entry layouts
of Fig. 7b/7c:

* pre-execution request queue entry — PRE_ID 16 b + ThreadID 16 b +
  TransactionID 16 b + ProcAddr 42 b + Size 32 b + Func 3 b
  (≈ 119 bits, quoted minus the inline value field);
* pre-execution operation queue entry — ≈ 103 bits;
* IRB entry — identification fields + ProcAddr + 512 b data copy +
  576 b intermediate results + complete bit = 1179 bits ≈ 148 B.

With the Table 3 entry counts (16 / 64 / 64) the IRB alone is 9.25 KB
(the figure quoted in the paper's prose) and everything together is
~0.5% of the 2 MB LLC.
"""

from dataclasses import dataclass
from typing import Dict

from repro.common.config import JanusConfig


#: Field widths in bits (paper Fig. 7b/7c).
REQUEST_QUEUE_FIELDS: Dict[str, int] = {
    "PRE_ID": 16,
    "ThreadID": 16,
    "TransactionID": 16,
    "ProcAddr": 42,
    "Size": 26,
    "Func": 3,
}

OPERATION_QUEUE_FIELDS: Dict[str, int] = {
    "PRE_ID": 16,
    "ThreadID": 16,
    "TransactionID": 16,
    "ProcAddr": 42,
    "Seq": 10,
    "Flags": 3,
}

IRB_FIELDS: Dict[str, int] = {
    "PRE_ID": 16,
    "ThreadID": 16,
    "TransactionID": 16,
    "ProcAddr": 42,
    "Data": 512,
    "IntermediateResults": 576,
    "Complete": 1,
}

#: Gate count of the 4-wide BMO units (paper cites Satoh et al. for
#: AES/SHA cores) and the resulting die area at 14 nm.
BMO_UNIT_GATES = 300_000
BMO_UNIT_AREA_MM2 = 0.065

LLC_BYTES = 2 * 1024 * 1024


@dataclass
class OverheadReport:
    request_entry_bits: int
    operation_entry_bits: int
    irb_entry_bits: int
    request_queue_bytes: float
    operation_queue_bytes: float
    irb_bytes: float
    total_bytes: float
    irb_kib: float
    total_kib: float
    fraction_of_llc: float
    bmo_gates: int
    bmo_area_mm2: float

    def lines(self) -> list:
        return [
            f"request-queue entry : {self.request_entry_bits} bits",
            f"operation-queue entry: {self.operation_entry_bits} bits",
            f"IRB entry           : {self.irb_entry_bits} bits "
            f"({self.irb_entry_bits / 8:.0f} B)",
            f"request queue       : {self.request_queue_bytes:.0f} B",
            f"operation queue     : {self.operation_queue_bytes:.0f} B",
            f"IRB                 : {self.irb_bytes:.0f} B "
            f"({self.irb_kib:.2f} KiB)",
            f"total               : {self.total_bytes:.0f} B "
            f"({self.total_kib:.2f} KiB)",
            f"fraction of 2MB LLC : {self.fraction_of_llc * 100:.2f}%",
            f"BMO units           : {self.bmo_gates} gates, "
            f"{self.bmo_area_mm2} mm^2 @14nm",
        ]


def hardware_overhead_report(config: JanusConfig = None) -> OverheadReport:
    """Compute the §5.2.7 numbers for a Janus configuration."""
    cfg = config or JanusConfig()
    request_bits = sum(REQUEST_QUEUE_FIELDS.values())
    operation_bits = sum(OPERATION_QUEUE_FIELDS.values())
    irb_bits = sum(IRB_FIELDS.values())
    request_bytes = cfg.scaled("request_queue_entries") * request_bits / 8
    operation_bytes = (cfg.scaled("operation_queue_entries")
                       * operation_bits / 8)
    irb_bytes = cfg.scaled("irb_entries") * irb_bits / 8
    total = request_bytes + operation_bytes + irb_bytes
    return OverheadReport(
        request_entry_bits=request_bits,
        operation_entry_bits=operation_bits,
        irb_entry_bits=irb_bits,
        request_queue_bytes=request_bytes,
        operation_queue_bytes=operation_bytes,
        irb_bytes=irb_bytes,
        total_bytes=total,
        irb_kib=irb_bytes / 1024,
        total_kib=total / 1024,
        fraction_of_llc=total / LLC_BYTES,
        bmo_gates=BMO_UNIT_GATES,
        bmo_area_mm2=BMO_UNIT_AREA_MM2,
    )
