"""Janus: pre-execution hardware and its software interface.

This package is the paper's primary contribution (§4):

* :class:`IntermediateResultBuffer` — stores pre-executed sub-operation
  results at the memory controller, isolated from processor/memory
  state, with data-copy validation, metadata-change invalidation,
  aging, and drop-on-full semantics (§4.3.1, §4.6);
* :class:`PreExecRequestQueue` / :class:`PreExecOperationQueue` and the
  decoder between them — buffering, coalescing, and cache-line
  splitting of pre-execution requests (§4.3.2, Fig. 7);
* :class:`JanusEngine` — ties the queues, the IRB, and the shared BMO
  units together: pumps requests, pre-executes what the available
  inputs allow, and services the actual write when it arrives;
* :class:`JanusInterface` — the software API of Table 2 (``PRE_INIT``,
  ``PRE_ADDR``/``PRE_DATA``/``PRE_BOTH``/``PRE_BOTH_VAL`` and the
  deferred ``_BUF`` variants with ``PRE_START_BUF``).
"""

from repro.janus.api import JanusInterface, PreObj
from repro.janus.engine import JanusEngine
from repro.janus.irb import IntermediateResultBuffer, IrbEntry
from repro.janus.misuse import MisuseReport, diagnose
from repro.janus.overhead import hardware_overhead_report
from repro.janus.queues import (
    PreExecOperation,
    PreExecOperationQueue,
    PreExecRequest,
    PreExecRequestQueue,
    decode_request,
)

__all__ = [
    "IntermediateResultBuffer",
    "IrbEntry",
    "JanusEngine",
    "JanusInterface",
    "MisuseReport",
    "diagnose",
    "PreExecOperation",
    "PreExecOperationQueue",
    "PreExecRequest",
    "PreExecRequestQueue",
    "PreObj",
    "decode_request",
    "hardware_overhead_report",
]
