"""repro — a Python reproduction of Janus (ISCA 2019).

Janus parallelizes and pre-executes the backend memory operations
(encryption, integrity verification, deduplication, ...) that sit on
the write critical path of crash-consistent NVM software.

Public API map:

* build a machine: :func:`repro.common.config.default_config` ->
  :class:`repro.core.NvmSystem`;
* talk to it from a program: :class:`repro.core.Core` (read / store /
  clwb / sfence / compute) and the Janus software interface on
  ``core.api`` (:class:`repro.janus.JanusInterface`);
* crash consistency: :class:`repro.consistency.UndoLog` /
  :class:`repro.consistency.RedoLog` and
  :func:`repro.consistency.recover`;
* the paper's workloads: :func:`repro.workloads.make_workload`;
* experiments: :mod:`repro.harness.experiments` (one driver per table
  and figure) or ``python -m repro`` on the command line.
"""

from repro.common.config import SystemConfig, default_config
from repro.core import NvmSystem

__version__ = "1.0.0"

__all__ = [
    "NvmSystem",
    "SystemConfig",
    "default_config",
    "__version__",
]
