"""Line compression as a BMO (FPC/BDI class, Table 1: 5-30 ns).

Sub-operations:

* ``C1`` — compress the line (data-dependent),
* ``C2`` — update the size-mapping metadata entry (needs the address
  and the compressed size).

When compression and encryption are both enabled, the pipeline adds
the inter-operation edge C1 -> E3: encryption must operate on the
compressed bytes (the paper's introduction uses exactly this pair as
the example of why monolithic BMOs appear unparallelisable).

The functional model is honest about *compressibility* — it uses
zlib over the real line bytes — but the stored NVM image remains one
full line per line (size mapping is bookkeeping only); packing lines
into sub-line extents is out of scope for the timing questions this
repo answers, and is noted in DESIGN.md.
"""

import zlib
from typing import Dict, Tuple

from repro.bmo.base import (
    ADDR,
    BackendOperation,
    BmoContext,
    DATA,
    SubOp,
)
from repro.common.config import BmoLatencies


class CompressionBmo(BackendOperation):
    """zlib-backed compressibility model with a size-mapping table."""

    name = "compression"

    def __init__(self, latencies: BmoLatencies):
        super().__init__()
        self.lat = latencies
        #: addr -> compressed size in bytes (metadata).
        self.size_map: Dict[int, int] = {}
        self.bytes_in = 0
        self.bytes_out = 0

    def _c1(self, ctx: BmoContext) -> None:
        compressed = zlib.compress(ctx.data, level=1)
        size = min(len(compressed), len(ctx.data))
        ctx.values["compressed_size"] = size
        ctx.values["compressed_data"] = (
            compressed if len(compressed) < len(ctx.data) else ctx.data)

    def _c2(self, ctx: BmoContext) -> None:
        ctx.values["size_map_entry"] = (
            ctx.addr, ctx.require("compressed_size"))

    def subops(self) -> Tuple[SubOp, ...]:
        return (
            SubOp("C1", self.name, self.lat.compression_ns,
                  deps=(), external=frozenset({DATA}), run=self._c1),
            SubOp("C2", self.name, self.lat.remap_update_ns,
                  deps=("C1",), external=frozenset({ADDR}), run=self._c2),
        )

    def commit(self, ctx: BmoContext) -> None:
        addr, size = ctx.require("size_map_entry")
        self.size_map[addr] = size
        self.bytes_in += len(ctx.data)
        self.bytes_out += size

    def stale_subops(self, ctx: BmoContext) -> set:
        return set()

    def compression_ratio(self) -> float:
        """Aggregate output/input byte ratio (1.0 = incompressible)."""
        return self.bytes_out / self.bytes_in if self.bytes_in else 1.0
