"""Sub-operations, per-write contexts, and the BMO base class."""

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.common.errors import SimulationError


class ExternalInput(enum.Enum):
    """The two external inputs a write request carries (paper §3.1)."""

    ADDR = "addr"
    DATA = "data"


#: Shorthands used throughout the BMO definitions.
ADDR = ExternalInput.ADDR
DATA = ExternalInput.DATA


@dataclass(frozen=True)
class SubOp:
    """One decomposed step of a BMO.

    ``deps`` names predecessor sub-ops (same or other BMO — the graph
    does not care, which is exactly the point of the decomposition).
    ``external`` lists *direct* external inputs; the transitive closure
    is computed by :class:`repro.bmo.graph.DependencyGraph`.
    ``run`` performs the functional work: it may read shared mechanism
    state but must only write into the :class:`BmoContext` (so that
    pre-execution leaves processor/memory state untouched —
    requirement 1 of §3.2).
    """

    name: str
    bmo: str
    latency_ns: float
    deps: Tuple[str, ...] = ()
    external: FrozenSet[ExternalInput] = frozenset()
    run: Optional[Callable[["BmoContext"], None]] = None

    def execute(self, ctx: "BmoContext") -> None:
        """Run the functional action, recording completion in ``ctx``."""
        if self.run is not None:
            self.run(ctx)
        ctx.completed.add(self.name)


@dataclass
class BmoContext:
    """Everything the sub-operations of one line-write compute.

    The context is the "intermediate results" cell of an IRB entry:
    it accumulates counter, OTP, fingerprint, duplicate verdict,
    ciphertext, MAC, Merkle path, etc.  It never aliases shared
    mechanism state; committing the results to the shared mechanisms
    is a separate, explicit step owned by the pipeline.
    """

    addr: Optional[int] = None
    data: Optional[bytes] = None
    #: Sub-op names whose functional action has run.
    completed: set = field(default_factory=set)
    #: Free-form slots filled by sub-ops.
    values: Dict[str, object] = field(default_factory=dict)

    @property
    def available_inputs(self) -> FrozenSet[ExternalInput]:
        inputs = set()
        if self.addr is not None:
            inputs.add(ADDR)
        if self.data is not None:
            inputs.add(DATA)
        return frozenset(inputs)

    def require(self, key: str):
        """Fetch a value produced by an earlier sub-op, or fail loudly."""
        if key not in self.values:
            raise SimulationError(
                f"sub-operation ordering bug: {key!r} not yet computed "
                f"(completed={sorted(self.completed)})")
        return self.values[key]

    def merge_from(self, other: "BmoContext") -> None:
        """Adopt another context's results (IRB hit path).

        Used when a write arrives and finds pre-executed results: the
        write's fresh context absorbs what the pre-execution computed.
        """
        self.completed |= other.completed
        for key, value in other.values.items():
            self.values.setdefault(key, value)
        if self.addr is None:
            self.addr = other.addr
        if self.data is None:
            self.data = other.data


class BackendOperation:
    """Base class for a BMO mechanism.

    Subclasses own their shared metadata (dedup tables, counters,
    Merkle tree), declare their sub-operations via :meth:`subops`, and
    implement :meth:`commit` — the only place shared state mutates,
    called by the memory controller when the actual write lands.

    ``invalidation_hooks`` lets the Janus IRB subscribe to metadata
    changes that would stale pre-executed results (paper §4.3.1,
    cause 2).
    """

    name = "bmo"

    def __init__(self) -> None:
        self.invalidation_hooks = []

    def subops(self) -> Tuple[SubOp, ...]:
        raise NotImplementedError

    def commit(self, ctx: BmoContext) -> None:
        """Apply the context's results to shared mechanism state."""

    def notify_metadata_change(self, **details) -> None:
        """Tell subscribers (the IRB) that shared metadata changed."""
        for hook in self.invalidation_hooks:
            hook(self.name, details)

    # -- persistence ---------------------------------------------------
    def unreconstructable_metadata(self) -> dict:
        """Metadata that cannot be rebuilt from NVM data alone and must
        therefore be persisted atomically with the data (paper §4.3).
        """
        return {}

    def restore_metadata(self, snapshot: dict) -> None:
        """Recovery path: reinstall persisted metadata."""
