"""Error correction as a BMO (ECC/ECP class, Table 1: 0.4-3 ns).

Sub-operation ``X1`` computes the protection code for the outgoing
line.  The functional model is a Hamming-style per-64-bit-word SECDED
scheme reduced to what the tests need: the code *detects* any
single-bit corruption of the stored line and *locates* the flipped
bit within each 8-byte word via a parity-position syndrome, allowing
correction.

When encryption is in the pipeline the code is computed over the
ciphertext (edge E3 -> X1), since that is what lives in the device;
otherwise over the raw data.

Detected-uncorrectable contract: :func:`check` raises
:class:`~repro.common.errors.UncorrectableMediaError` when the damage
exceeds single-bit-per-word correction.  Callers that can degrade
(retry, poison the line) catch it; nothing ever receives a silently
miscorrected line or an ambiguous ``None``.
"""

from typing import Optional, Tuple

from repro.bmo.base import BackendOperation, BmoContext, DATA, SubOp
from repro.common.config import BmoLatencies
from repro.common.errors import UncorrectableMediaError


def _word_syndrome(word: int) -> int:
    """Position-parity syndrome of a 64-bit word.

    XOR of the indices of all set bits — flipping bit ``i`` changes
    the syndrome by ``i ^ 0`` (if parity bookkeeping also carries the
    overall parity, the flipped position is recoverable).
    """
    syndrome = 0
    index = 1  # 1-based so position 0 is distinguishable
    while word:
        if word & 1:
            syndrome ^= index
        word >>= 1
        index += 1
    return syndrome


def encode(line: bytes) -> bytes:
    """Protection code: per-word (syndrome, parity) pairs."""
    code = bytearray()
    for offset in range(0, len(line), 8):
        word = int.from_bytes(line[offset:offset + 8], "little")
        syndrome = _word_syndrome(word)
        parity = bin(word).count("1") & 1
        code += syndrome.to_bytes(1, "little")
        code += parity.to_bytes(1, "little")
    return bytes(code)


def check(line: bytes, code: bytes, line_addr: Optional[int] = None
          ) -> bytes:
    """Verify ``line`` against ``code``; correct a single flipped bit.

    Returns the (possibly corrected) line.  Raises
    :class:`UncorrectableMediaError` when the damage exceeds
    single-bit-per-word correction capability — the detected-
    uncorrectable case must be explicit, never a miscorrected line
    handed back as if it were clean.
    """
    fixed = bytearray(line)
    for word_index, offset in enumerate(range(0, len(line), 8)):
        word = int.from_bytes(line[offset:offset + 8], "little")
        stored_syndrome = code[word_index * 2]
        stored_parity = code[word_index * 2 + 1]
        syndrome = _word_syndrome(word)
        parity = bin(word).count("1") & 1
        if syndrome == stored_syndrome and parity == stored_parity:
            continue
        if parity == stored_parity:
            # Even number of flips: parity looks clean but the
            # syndrome moved — detected, uncorrectable here.
            raise UncorrectableMediaError(
                f"multi-bit (even) damage in word {word_index}",
                line_addr=line_addr)
        flipped = syndrome ^ stored_syndrome
        if not 1 <= flipped <= 64:
            raise UncorrectableMediaError(
                f"syndrome points outside word {word_index}",
                line_addr=line_addr)
        word ^= 1 << (flipped - 1)
        if _word_syndrome(word) != stored_syndrome:
            raise UncorrectableMediaError(
                f"correction did not converge in word {word_index}",
                line_addr=line_addr)
        fixed[offset:offset + 8] = word.to_bytes(8, "little")
    return bytes(fixed)


class EccBmo(BackendOperation):
    """Write-path ECC encode sub-operation."""

    name = "ecc"

    def __init__(self, latencies: BmoLatencies,
                 with_encryption: bool = False):
        super().__init__()
        self.lat = latencies
        self.with_encryption = with_encryption
        #: addr -> protection code for the stored line.
        self.codes = {}

    def _x1(self, ctx: BmoContext) -> None:
        if self.with_encryption:
            payload = ctx.values.get("ciphertext")
            if payload is None:  # duplicate write: nothing stored
                ctx.values["ecc_code"] = None
                return
        else:
            payload = ctx.data
        ctx.values["ecc_code"] = encode(payload)

    def subops(self) -> Tuple[SubOp, ...]:
        deps = ("E3",) if self.with_encryption else ()
        external = frozenset() if self.with_encryption else frozenset({DATA})
        return (
            SubOp("X1", self.name, self.lat.ecc_ns,
                  deps=deps, external=external, run=self._x1),
        )

    def commit(self, ctx: BmoContext) -> None:
        code = ctx.values.get("ecc_code")
        if code is not None:
            self.codes[ctx.addr] = code

    def stale_subops(self, ctx: BmoContext) -> set:
        return set()

    def verify_line(self, addr: int, stored: bytes) -> bytes:
        """Scrub helper: check/correct a line read from the device.

        Raises :class:`UncorrectableMediaError` on detected-
        uncorrectable damage; returns the (corrected) line otherwise.
        """
        code = self.codes.get(addr)
        if code is None:
            return stored
        return check(stored, code, line_addr=addr)

    # -- persistence ----------------------------------------------------
    def unreconstructable_metadata(self) -> dict:
        # Like counters/MACs, the codes commit at the persist point
        # and are what recovery needs to re-verify stored lines.
        return {"codes": dict(self.codes)}

    def restore_metadata(self, snapshot: dict) -> None:
        self.codes = dict(snapshot.get("codes", {}))
