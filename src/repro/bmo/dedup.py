"""Inline deduplication as a decomposed BMO (DeWrite-style).

Sub-operations (paper §3.1):

* ``D1`` — fingerprint the data (MD5 by default, CRC-32 as the
  lightweight Fig. 12 alternative) — data-dependent,
* ``D2`` — look the fingerprint up in the dedup table — data-dependent,
* ``D3`` — update the address-mapping (remap) table entry,
* ``D4`` — encrypt the new metadata entry and write it back (the
  metadata entry co-locates the remap pointer and the encryption
  counter, which is the inter-operation edge E1 -> D4).

Functional model
----------------

``DedupTable`` keeps refcounted entries keyed by fingerprint.  Each
entry remembers where the single physical copy of the ciphertext lives
(``store_addr``), and the ``(pad_addr, counter)`` pair its OTP was
derived from, so any aliasing line can be decrypted through the remap
table.  Overwriting a canonical line whose data other lines still
reference *relocates* the old ciphertext to a shadow line first — and
fires a metadata-change notification, which is the paper's worked
example of IRB invalidation (§4.3.1: "an intervening write to location
A ... the pre-execution result in the IRB will be invalidated").

CRC-32 fingerprints are only 32 bits, so a table hit is confirmed with
a byte compare against the stored plaintext before declaring a
duplicate (false fingerprint matches are then harmless).
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bmo.base import (
    ADDR,
    BackendOperation,
    BmoContext,
    DATA,
    SubOp,
)
from repro.common.config import BmoLatencies, DedupConfig
from repro.common.errors import SimulationError
from repro.crypto.primitives import FingerprintEngine


@dataclass
class DedupEntry:
    """One deduplicated value and where its ciphertext lives."""

    fingerprint: bytes
    store_addr: int     # NVM line holding the single ciphertext copy
    pad_addr: int       # address the OTP was derived from
    counter: int        # counter the OTP was derived from
    refcount: int
    plaintext: bytes    # kept for CRC confirm + recovery checks


class DedupTable:
    """Fingerprint table + address remap table + shadow allocator."""

    def __init__(self, shadow_base: int, shadow_lines: int = 4096,
                 line_bytes: int = 64):
        self.entries: Dict[bytes, DedupEntry] = {}
        self.remap: Dict[int, bytes] = {}
        self.line_bytes = line_bytes
        self._shadow_base = shadow_base
        self._shadow_limit = shadow_base + shadow_lines * line_bytes
        self._shadow_next = shadow_base
        self.relocations = 0

    def alloc_shadow_line(self) -> int:
        """A fresh line in the dedup reserve region (for relocation)."""
        if self._shadow_next >= self._shadow_limit:
            raise SimulationError("dedup shadow region exhausted")
        addr = self._shadow_next
        self._shadow_next += self.line_bytes
        return addr

    def lookup(self, fingerprint: bytes,
               data: bytes = None) -> Optional[DedupEntry]:
        """Find an entry, confirming weak fingerprints against data."""
        entry = self.entries.get(fingerprint)
        if entry is None:
            return None
        if data is not None and entry.plaintext != data:
            return None  # fingerprint collision (possible with CRC-32)
        return entry

    def fingerprint_of(self, addr: int) -> Optional[bytes]:
        return self.remap.get(addr)

    def entry_for_addr(self, addr: int) -> Optional[DedupEntry]:
        fp = self.remap.get(addr)
        return self.entries.get(fp) if fp is not None else None

    def snapshot(self) -> dict:
        return {
            "entries": {
                fp: DedupEntry(e.fingerprint, e.store_addr, e.pad_addr,
                               e.counter, e.refcount, e.plaintext)
                for fp, e in self.entries.items()},
            "remap": dict(self.remap),
            "shadow_next": self._shadow_next,
        }

    def restore(self, snap: dict) -> None:
        self.entries = {
            fp: DedupEntry(e.fingerprint, e.store_addr, e.pad_addr,
                           e.counter, e.refcount, e.plaintext)
            for fp, e in snap["entries"].items()}
        self.remap = dict(snap["remap"])
        self._shadow_next = snap["shadow_next"]


class DedupBmo(BackendOperation):
    """Deduplication mechanism with pluggable fingerprint engine."""

    name = "dedup"

    def __init__(self, latencies: BmoLatencies, config: DedupConfig,
                 table: DedupTable = None,
                 nvm_copy_line=None,
                 with_encryption: bool = False):
        super().__init__()
        self.with_encryption = with_encryption
        self.lat = latencies
        self.cfg = config
        fingerprint_latency = (latencies.md5_ns
                               if config.algorithm == "md5"
                               else latencies.crc32_ns)
        self.engine = FingerprintEngine(config.algorithm,
                                        fingerprint_latency)
        self.table = table if table is not None else DedupTable(
            shadow_base=1 << 40)
        #: Callback(src_line, dst_line) the memory controller installs
        #: so relocation can physically move ciphertext in NVM.
        self.nvm_copy_line = nvm_copy_line
        self.duplicate_writes = 0
        self.unique_writes = 0

    # -- functional sub-op bodies -------------------------------------
    def _d1(self, ctx: BmoContext) -> None:
        ctx.values["fingerprint"] = self.engine.fingerprint(ctx.data)

    def _d2(self, ctx: BmoContext) -> None:
        fingerprint = ctx.require("fingerprint")
        entry = self.table.lookup(fingerprint, ctx.data)
        # A write whose own line already canonically holds this value
        # is also a duplicate (idempotent rewrite).
        ctx.values["is_dup"] = entry is not None
        ctx.values["dup_entry_counter"] = \
            entry.counter if entry is not None else None

    def _d3(self, ctx: BmoContext) -> None:
        # The new remap-table entry: alias to the existing copy for a
        # duplicate, identity mapping (plus encryption counter) for a
        # unique value.  Built in the context; installed at commit.
        ctx.values["remap_entry"] = (
            ctx.addr, ctx.require("fingerprint"),
            bool(ctx.values.get("is_dup")))

    def _d4(self, ctx: BmoContext) -> None:
        # Encrypt the metadata entry for writeback.  Modeled functionally
        # as bundling the entry with the counter (co-located metadata,
        # inter-op dependency E1 -> D4).
        ctx.values["metadata_line"] = (
            ctx.require("remap_entry"), ctx.values.get("counter"))

    def subops(self) -> Tuple[SubOp, ...]:
        return (
            SubOp("D1", self.name, self.engine.latency_ns,
                  deps=(), external=frozenset({DATA}), run=self._d1),
            SubOp("D2", self.name, self.lat.dedup_lookup_ns,
                  deps=("D1",), run=self._d2),
            SubOp("D3", self.name, self.lat.remap_update_ns,
                  deps=("D2",), external=frozenset({ADDR}), run=self._d3),
            SubOp("D4", self.name, self.lat.remap_update_ns,
                  deps=("D3", "E1") if self.with_encryption else ("D3",),
                  run=self._d4),
        )

    # -- commit / staleness --------------------------------------------
    def _decref(self, fingerprint: bytes) -> None:
        entry = self.table.entries.get(fingerprint)
        if entry is None:
            return
        entry.refcount -= 1
        if entry.refcount <= 0:
            del self.table.entries[fingerprint]
            self.notify_metadata_change(kind="entry_dropped",
                                        fingerprint=fingerprint,
                                        store_addr=entry.store_addr)

    def commit(self, ctx: BmoContext) -> None:
        fingerprint = ctx.require("fingerprint")
        addr = ctx.addr
        old_fp = self.table.remap.get(addr)

        # If this line canonically stores a value other lines still
        # alias, relocate that ciphertext before overwriting the line.
        if old_fp is not None:
            old_entry = self.table.entries.get(old_fp)
            if (old_entry is not None and old_entry.store_addr == addr
                    and old_entry.refcount > 1
                    and old_fp != fingerprint):
                shadow = self.table.alloc_shadow_line()
                if self.nvm_copy_line is not None:
                    self.nvm_copy_line(old_entry.store_addr, shadow)
                old_entry.store_addr = shadow
                self.table.relocations += 1
                self.notify_metadata_change(kind="relocated",
                                            fingerprint=old_fp,
                                            store_addr=shadow)

        # Commit against the *current* table state (the verdict in ctx
        # is refreshed by the executor when stale, but correctness here
        # must not hinge on that).
        entry = self.table.lookup(fingerprint, ctx.data)
        if entry is not None:
            entry.refcount += 1
            self.duplicate_writes += 1
        else:
            # Unique value: this line becomes the canonical copy.
            self.table.entries[fingerprint] = DedupEntry(
                fingerprint=fingerprint,
                store_addr=addr,
                pad_addr=addr,
                counter=ctx.values.get("counter", 0),
                refcount=1,
                plaintext=bytes(ctx.data),
            )
            self.unique_writes += 1
        if old_fp is not None and old_fp != fingerprint:
            self._decref(old_fp)
        if old_fp == fingerprint and entry is not None:
            # Idempotent rewrite of the same value: refcount was bumped
            # above but the alias count did not actually grow.
            entry.refcount -= 1
        self.table.remap[addr] = fingerprint

    def stale_subops(self, ctx: BmoContext) -> set:
        """The pre-executed duplicate verdict is stale if the table
        changed so the verdict would differ now (§4.3.1, cause 2)."""
        if "fingerprint" not in ctx.values or "is_dup" not in ctx.values:
            return set()
        entry = self.table.lookup(ctx.values["fingerprint"], ctx.data)
        if (entry is not None) != bool(ctx.values["is_dup"]):
            return {"D2"}
        return set()

    def observed_ratio(self) -> float:
        total = self.duplicate_writes + self.unique_writes
        return self.duplicate_writes / total if total else 0.0

    def unreconstructable_metadata(self) -> dict:
        return {"dedup": self.table.snapshot()}

    def restore_metadata(self, snapshot: dict) -> None:
        self.table.restore(snapshot["dedup"])
