"""Backend memory operations (BMOs) and their decomposition.

This package implements the paper's first key idea (§3.1): each BMO —
encryption, integrity verification, deduplication, compression,
wear-leveling, ECC — is *decomposed* into sub-operations
(:class:`SubOp`) with three kinds of dependencies:

* **intra-operation** — between sub-ops of the same BMO (E1 -> E2);
* **inter-operation** — across BMOs (D2 -> E3: duplicate writes are
  cancelled before encryption);
* **external** — on the address and/or data of the write itself.

:class:`DependencyGraph` computes the transitive external-input
closure of every sub-op, which classifies it as address-dependent,
data-dependent, or both (Fig. 2b / Fig. 6) — the property Janus's
pre-execution exploits.
"""

from repro.bmo.base import BmoContext, BackendOperation, ExternalInput, SubOp
from repro.bmo.compression import CompressionBmo
from repro.bmo.dedup import DedupBmo, DedupTable
from repro.bmo.ecc import EccBmo
from repro.bmo.encryption import EncryptionBmo
from repro.bmo.graph import DependencyGraph
from repro.bmo.integrity import IntegrityBmo
from repro.bmo.pipeline import BmoPipeline, build_pipeline
from repro.bmo.wear_leveling import WearLevelingBmo

__all__ = [
    "BackendOperation",
    "BmoContext",
    "BmoPipeline",
    "CompressionBmo",
    "DedupBmo",
    "DedupTable",
    "DependencyGraph",
    "EccBmo",
    "EncryptionBmo",
    "ExternalInput",
    "IntegrityBmo",
    "SubOp",
    "WearLevelingBmo",
    "build_pipeline",
]
