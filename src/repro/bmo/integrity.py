"""Bonsai-Merkle-tree integrity verification as a decomposed BMO.

The paper's Fig. 6 draws integrity verification as I1 (hash the leaf)
-> I2 (intermediate levels) -> I3 (root).  We decompose one step
further — one sub-operation per tree level, ``I1 .. I<height>`` — so
that partial staleness maps naturally onto the schedule: if a
concurrent write only disturbed the upper levels of the tree, only the
upper ``I`` sub-ops are re-executed when the pre-executed result is
consumed.  Total latency is ``height x sha1_ns`` (9 x 40 ns = 360 ns
with the paper's 4 GB / arity-8 tree).

The leaf covers the co-located metadata entry — the encryption counter
and the dedup remap pointer (DeWrite-style integration) — hence the
inter-operation dependencies I1 <- E1 and I1 <- D2.

Functional safety: pre-executed path digests are *never* installed
blindly.  The commit recomputes the path against the live tree (always
correct); the pre-executed sibling snapshot is used only to decide how
much hashing *time* must be recharged.  ``tests/test_crypto_merkle.py::
test_apply_stale_path_breaks_verification`` demonstrates the hazard
this avoids.

The same recompute-at-commit guarantee is what makes the ``coalesced``
scheduling mode (:mod:`repro.bmo.policy`) a pure timing optimization:
when overlapping writebacks share an ancestor node, only the first
write in the batch is *charged* for that level's hash — the functional
update still happens per-write at commit, so tree state and
verification are untouched.
"""

from typing import Tuple

from repro.bmo.base import BackendOperation, BmoContext, SubOp
from repro.common.config import BmoLatencies, IntegrityConfig
from repro.crypto.merkle import MerkleTree


def leaf_value_for(ctx: BmoContext) -> bytes:
    """Serialize the metadata protected by this line's leaf."""
    counter = ctx.values.get("counter", 0) or 0
    fingerprint = ctx.values.get("fingerprint", b"") or b""
    is_dup = bool(ctx.values.get("is_dup"))
    return (counter.to_bytes(16, "little")
            + (b"\x01" if is_dup else b"\x00")
            + fingerprint)


class IntegrityBmo(BackendOperation):
    """Per-level Merkle-tree update sub-operations."""

    name = "integrity"

    def __init__(self, latencies: BmoLatencies, config: IntegrityConfig,
                 tree: MerkleTree = None,
                 with_encryption: bool = False,
                 with_dedup: bool = False,
                 line_bytes: int = 64):
        super().__init__()
        self.lat = latencies
        self.cfg = config
        self.tree = tree if tree is not None else MerkleTree(
            arity=config.arity, height=config.height)
        self.with_encryption = with_encryption
        self.with_dedup = with_dedup
        self.line_bytes = line_bytes
        #: leaf index -> committed leaf value.  Conceptually this is
        #: the metadata region's current content (co-located counters
        #: and remap pointers); kept explicitly so scrubbing and
        #: recovery can re-verify the tree without reconstructing
        #: transient per-write state.
        self.committed_leaves = {}

    def leaf_index(self, addr: int) -> int:
        return (addr // self.line_bytes) % self.tree.leaf_capacity

    # -- functional sub-op bodies -------------------------------------
    def _snapshot_path(self, ctx: BmoContext) -> None:
        leaf_value = leaf_value_for(ctx)
        index = self.leaf_index(ctx.addr)
        if self.cfg.strict_sibling_invalidation:
            path, siblings = self.tree.path_with_siblings(index, leaf_value)
        else:
            # The sibling snapshot is consumed only by the strict
            # ablation mode's staleness judgement; the default model
            # needs just the pre-executed path digests.
            path = self.tree.path_digests(index, leaf_value)
            siblings = None
        ctx.values["merkle_index"] = index
        ctx.values["merkle_leaf_value"] = leaf_value
        ctx.values["merkle_path"] = path
        ctx.values["merkle_siblings"] = siblings
        ctx.values["merkle_tree_version"] = self.tree.mutations

    def _snapshot_fresh(self, ctx: BmoContext) -> bool:
        """True iff the recorded snapshot provably matches what a
        recomputation against the live tree would produce: the tree
        has not mutated since the snapshot and the leaf value (which
        depends on earlier sub-op results a fault may have perturbed)
        is unchanged."""
        return (ctx.values.get("merkle_path") is not None
                and ctx.values.get("merkle_tree_version")
                == self.tree.mutations
                and ctx.values.get("merkle_leaf_value")
                == leaf_value_for(ctx))

    def _i1(self, ctx: BmoContext) -> None:
        self._snapshot_path(ctx)

    def _i_top(self, ctx: BmoContext) -> None:
        # The root-level hash re-reads the (possibly changed) upper
        # siblings.  Refreshing the snapshot here is what lets a
        # partial re-execution (only upper levels stale) converge —
        # the recorded siblings match the live tree again afterwards.
        # If the tree has not mutated since I1 the refresh would read
        # back byte-identical state, so it is skipped.
        if self._snapshot_fresh(ctx):
            return
        self._snapshot_path(ctx)

    def subops(self) -> Tuple[SubOp, ...]:
        i1_deps = []
        if self.with_encryption:
            i1_deps.append("E1")
        if self.with_dedup:
            i1_deps.append("D2")
        height = self.tree.height
        if height == 1:
            return (SubOp("I1", self.name, self._level_latency(1),
                          deps=tuple(i1_deps), run=self._i_top),)
        ops = [SubOp("I1", self.name, self._level_latency(1),
                     deps=tuple(i1_deps), run=self._i1)]
        for level in range(2, height + 1):
            run = self._i_top if level == height else None
            ops.append(SubOp(f"I{level}", self.name,
                             self._level_latency(level),
                             deps=(f"I{level - 1}",), run=run))
        return tuple(ops)

    def _level_latency(self, level: int) -> float:
        """SHA-1 per level; the top ``cached_levels`` are absorbed by
        the Merkle cache (ablation knob, 0 by default for writes)."""
        if level > self.tree.height - self.cfg.cached_levels:
            return 0.0
        return self.lat.sha1_ns

    # -- commit / staleness --------------------------------------------
    def commit(self, ctx: BmoContext) -> None:
        leaf_value = leaf_value_for(ctx)
        index = self.leaf_index(ctx.addr)
        if self._snapshot_fresh(ctx) \
                and ctx.values.get("merkle_index") == index:
            # Janus's consume path: the pre-executed digests are
            # provably identical to what a recomputation would yield,
            # so install them directly.
            self.tree.apply_path(ctx.values["merkle_path"])
        else:
            # Recompute against the live tree: correct regardless of
            # how stale the pre-executed digests were.
            self.tree.update_leaf(index, leaf_value)
        self.committed_leaves[index] = leaf_value

    def stale_subops(self, ctx: BmoContext) -> set:
        if ctx.values.get("merkle_siblings") is None:
            return set()
        # A leaf-value change (stale counter / dedup verdict) is
        # caught upstream: E1/D2 staleness invalidates I1..In through
        # the dependency closure.  Sibling churn from *other* lines'
        # commits is charged only under the strict ablation mode —
        # the default model, like the paper's, lets the integrity
        # engine absorb upper-level rework off the critical path
        # (the committed tree is recomputed functionally either way).
        if not self.cfg.strict_sibling_invalidation:
            return set()
        siblings = ctx.values["merkle_siblings"]
        depth = self.tree.stale_depth(siblings)
        if depth > self.tree.height:
            return set()
        # Re-hash from the first level whose input changed upward.
        return {f"I{level}" for level in range(depth, self.tree.height + 1)}

    def root(self) -> bytes:
        """Secure-register root value (persisted in the processor)."""
        return self.tree.root

    def unreconstructable_metadata(self) -> dict:
        return {"tree": self.tree.snapshot(),
                "leaves": dict(self.committed_leaves)}

    def restore_metadata(self, snapshot: dict) -> None:
        self.tree.restore(snapshot["tree"])
        self.committed_leaves = dict(snapshot["leaves"])
