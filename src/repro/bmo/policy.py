"""Write-path scheduling policies (the mode/policy abstraction).

Every :class:`~repro.core.machine.MemoryController` owns exactly one
:class:`SchedulingPolicy`, selected by ``SystemConfig.mode``.  The
controller handles the mode-independent mechanics of a writeback
(cache transfer, reading the dirty line); the policy decides *when*
the BMO work runs and *what a completed writeback means* for
durability — the four-mode consistency contract is documented in
``docs/scheduling-modes.md``.

Strict policies (``serialized``, ``parallel``, ``janus``): the
writeback process returns only after the write (and, when required,
its metadata) is accepted into the ADR persist domain, so ``sfence``
implies durability.

``ideal``: BMOs and persistence run off the critical path entirely —
the paper's non-blocking upper bound (oracle, not buildable hardware).

``coalesced`` (Freij et al., *Streamlining Integrity Tree Updates*):
dataflow execution like ``parallel``, plus write-queue-level Merkle
path coalescing — temporally-overlapping writebacks whose integrity
paths share a tree ancestor charge that ancestor's hash once per
batch.  The discount is timing-only: the functional commit path is
byte-identical to ``serialized`` because the commit still recomputes
or freshness-checks the path through the PR-7 memoization counter
(``MerkleTree.mutations`` / ``IntegrityBmo._snapshot_fresh``), which
is exactly what makes a shared pending node update safe to not
re-hash.

``async-epoch`` (Vilamb-style): writebacks park in a volatile epoch
buffer and ``sfence`` completes once buffered — durability is
*deferred*.  Every ``epoch_writes`` buffered writes the epoch closes
and a background flusher replays it, in order, through the normal
per-write BMO/persist path.  At most ``staleness_epochs`` closed
epochs may be awaiting flush before new writebacks stall (the
staleness dial).  After an epoch's last write is accepted into the
persist domain the policy advances a small durable watermark
(mirroring Vilamb's epoch counter in battery-backed space); recovery
uses it to demote transactions whose commit records landed during a
torn (partially-flushed) epoch — see
``repro.consistency.recovery.RecoveredState.rollback_undo_log``.
"""

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import SimulationError


class SchedulingPolicy:
    """Base class: one policy instance per memory controller."""

    name = ""
    #: ``True`` when a completed writeback (observed by ``sfence``)
    #: implies the write is in the ADR persist domain.
    durable_at_sfence = True

    def __init__(self, controller):
        self.controller = controller
        self.system = controller.system
        self.sim = controller.sim
        self.cfg = controller.cfg

    # -- the write path ------------------------------------------------
    def writeback(self, thread_id: int, line_addr: int, data: bytes,
                  critical: bool, start: float):
        """Process: mode-specific tail of one writeback.

        The controller has already charged the cache transfer and read
        the dirty line; the default (strict) shape runs the BMOs, then
        persists, then completes — so ``sfence`` implies durability.
        """
        mc = self.controller
        mc_arrival = self.sim.now
        ctx = yield from self.run_bmos(thread_id, line_addr, data)
        bmo_done = self.sim.now
        yield from mc._persist(ctx, critical)
        mc._h_critical_write.observe(self.sim.now - start)
        mc._trace(thread_id, line_addr, start, mc_arrival, bmo_done,
                  self.sim.now, critical)

    def run_bmos(self, thread_id: int, line_addr: int, data: bytes):
        """Process: run the BMO pipeline for one write; returns ctx."""
        raise NotImplementedError

    # -- lifecycle hooks -----------------------------------------------
    def quiesce(self) -> None:
        """Flush any relaxed state at clean shutdown (called by
        ``NvmSystem.run_programs`` before the background drain)."""

    def crash_metadata(self) -> Optional[Dict]:
        """Durable policy state contributed to the crash snapshot
        (``metadata["scheduling"]``), or ``None``."""
        return None


class SerializedPolicy(SchedulingPolicy):
    """Baseline: BMOs as one monolithic serial block per write."""

    name = "serialized"

    def run_bmos(self, thread_id, line_addr, data):
        ctx = self.system.pipeline.make_context(addr=line_addr,
                                                data=data)
        yield from self.system.executor.run_serialized(ctx)
        return ctx


class ParallelPolicy(SchedulingPolicy):
    """Dataflow execution of the sub-op graph (oracle-only mode —
    see docs/scheduling-modes.md: real BMT engines cannot start
    dependent sub-ops before their inputs exist without the Janus
    pre-execution hardware, so this point is an upper bound used by
    the differential oracles and Fig. 9/13, not a buildable design)."""

    name = "parallel"

    def run_bmos(self, thread_id, line_addr, data):
        ctx = self.system.pipeline.make_context(addr=line_addr,
                                                data=data)
        yield from self.system.executor.run_subops(ctx)
        return ctx


class JanusPolicy(SchedulingPolicy):
    """Pre-execution: consume IRB results, finish what is stale."""

    name = "janus"

    def run_bmos(self, thread_id, line_addr, data):
        # This controller's own engine: on the sharded machine each
        # shard pre-executes (and IRB-matches) only lines it owns.
        ctx, _fully = yield from self.controller.janus.service_write(
            thread_id, line_addr, data)
        return ctx


class IdealPolicy(SchedulingPolicy):
    """Non-blocking writeback: all BMO/persist work off the critical
    path.  Same-line writes chain so commits keep program order —
    being off the critical path must not reorder a line's final
    contents (hypothesis found exactly that bug)."""

    name = "ideal"

    def __init__(self, controller):
        super().__init__(controller)
        self._line_chains: Dict[int, object] = {}

    def writeback(self, thread_id, line_addr, data, critical, start):
        mc = self.controller
        mc_arrival = self.sim.now
        previous = self._line_chains.get(line_addr)
        proc = self.sim.process(
            self._background(line_addr, data, critical,
                             wait_for=previous),
            name="ideal-bg")
        self._line_chains[line_addr] = proc
        mc._h_critical_write.observe(self.sim.now - start)
        mc._trace(thread_id, line_addr, start, mc_arrival, mc_arrival,
                  self.sim.now, critical)
        return
        yield  # pragma: no cover — keeps this a generator

    def _background(self, line_addr, data, critical, wait_for=None):
        if wait_for is not None and not wait_for.triggered:
            yield wait_for
        ctx = self.system.pipeline.make_context(addr=line_addr,
                                                data=data)
        yield from self.system.executor.run_subops(ctx)
        yield from self.controller._persist(ctx, critical)


class TimingPolicyMux:
    """Route the executor's timing hook across sharded policies.

    ``BmoExecutor.timing_policy`` is a single slot; the sharded
    coalesced machine hangs this mux there and each shard's
    :class:`CoalescedPolicy` registers under its shard id.  Contexts
    are routed by the line address they operate on, which is the same
    key the writeback itself was routed by — so a shard's batch ledger
    only ever sees its own traffic.
    """

    def __init__(self, router):
        self.router = router
        #: shard id -> policy exposing ``adjust_timing``.
        self.policies: Dict[int, "CoalescedPolicy"] = {}

    def adjust_timing(self, name: str, ctx, total: int,
                      occupancy: int) -> Tuple[int, int]:
        if ctx.addr is None:
            return total, occupancy
        policy = self.policies.get(self.router.shard_of(ctx.addr))
        if policy is None:
            return total, occupancy
        return policy.adjust_timing(name, ctx, total, occupancy)


class CoalescedPolicy(ParallelPolicy):
    """Write-queue-level Merkle path coalescing (Freij et al.).

    Timing model: writebacks in flight at the same time form a
    *batch*; within a batch, the first write touching an integrity
    tree node at a given level pays that level's hash, every other
    write sharing the node rides the same pending update for free.
    The ledger is per-``(sub-op level, node index)`` keyed by batch
    id; a batch ends when the in-flight count drains to zero, so
    batching is deterministic (simulation order, not wall clock).

    Functional model: unchanged.  The commit path recomputes (or
    freshness-validates via ``MerkleTree.mutations``) every path it
    installs, so the final image is byte-identical to ``serialized``
    — asserted by ``repro.validate.oracles.check_mode_equivalence``.
    """

    name = "coalesced"

    def __init__(self, controller):
        super().__init__(controller)
        integrity = self.system.pipeline.by_name.get("integrity")
        self._integrity = integrity
        #: sub-op name -> leaves covered per node at that level.
        self._strides: Dict[str, int] = {}
        if integrity is not None:
            arity = integrity.tree.arity
            self._strides = {
                f"I{level}": arity ** (level - 1)
                for level in range(1, integrity.tree.height + 1)}
        self._batch = 0
        self._inflight = 0
        #: (sub-op, node index) -> batch id that already paid for it.
        self._charged: Dict[Tuple[str, int], int] = {}
        stats = self.system.metrics.scope(
            self.system.scope_name("sched", controller.shard_id))
        self._c_batches = stats.counter("coalesce_batches")
        self._c_coalesced = stats.counter("coalesced_node_updates")
        self._c_charged = stats.counter("charged_node_updates")
        # The executor exposes a single timing hook.  Unsharded: this
        # policy installs itself directly (legacy).  Sharded: all the
        # per-shard policies share one mux that routes each context to
        # the policy of the shard owning its line, so batching (and
        # the coalescing discount) stays per-controller.
        if self.cfg.shards == 1:
            self.system.executor.timing_policy = self
        else:
            mux = self.system.executor.timing_policy
            if not isinstance(mux, TimingPolicyMux):
                mux = TimingPolicyMux(self.system.router)
                self.system.executor.timing_policy = mux
            mux.policies[controller.shard_id] = self

    def writeback(self, thread_id, line_addr, data, critical, start):
        if self._inflight == 0:
            self._batch += 1
            self._charged.clear()
            self._c_batches.add()
        self._inflight += 1
        try:
            yield from super().writeback(thread_id, line_addr, data,
                                         critical, start)
        finally:
            self._inflight -= 1

    def adjust_timing(self, name: str, ctx, total: int,
                      occupancy: int) -> Tuple[int, int]:
        """Executor hook: discount an integrity level whose tree node
        was already charged by an overlapping write in this batch."""
        stride = self._strides.get(name)
        if stride is None or self._integrity is None \
                or ctx.addr is None:
            return total, occupancy
        node = self._integrity.leaf_index(ctx.addr) // stride
        key = (name, node)
        if self._charged.get(key) == self._batch:
            self._c_coalesced.add()
            return 0, 0
        self._charged[key] = self._batch
        self._c_charged.add()
        return total, occupancy


class TxnOrderCoordinator:
    """Cross-shard write-ahead ordering for async-epoch flushers.

    One instance per sharded async-epoch machine (``shards > 1``),
    shared by every shard's :class:`AsyncEpochPolicy`.  Each buffered
    write is tagged with a global sequence number at buffer time
    (:meth:`tag`); before a flusher persists a write it calls
    :meth:`wait_turn`, which blocks until every *earlier* write of the
    same transaction — on any shard — has reached the persist domain.
    That restores the write-ahead property the single-shard sequential
    flusher gives for free: a transaction's undo backup can never
    still be volatile while its in-place data write is already
    durable, so torn-epoch demotion stays possible.

    Blocking a flusher on a write that is still sitting in another
    shard's *open* epoch would deadlock if that shard never fills its
    epoch again, so :meth:`wait_turn` also *demands* the close of any
    open epoch holding an earlier write of the transaction.  Deadlock
    freedom follows by induction on the global sequence: the smallest
    unpersisted sequence a flusher waits on is, by construction, at
    the head of its transaction's queue, every write before it on its
    own shard is already persisted, and the demand guarantees its
    epoch is (or becomes) closed — so its flusher can always reach and
    persist it.

    Writes outside any transaction (``txn == 0``) are not ordered —
    they carry no undo semantics.
    """

    def __init__(self, sim):
        self.sim = sim
        #: Every shard's AsyncEpochPolicy (self-registered).
        self.policies: List["AsyncEpochPolicy"] = []
        self._seq = itertools.count(1)
        #: txn -> globally-ordered sequence numbers of its buffered,
        #: not-yet-persisted writes (across all shards).
        self._pending: Dict[int, List[int]] = {}
        #: txn -> flusher gates waiting for its head to advance.
        self._gates: Dict[int, List] = {}

    def tag(self, txn: int) -> int:
        """Assign the next global sequence to a buffered write."""
        seq = next(self._seq)
        if txn:
            self._pending.setdefault(txn, []).append(seq)
        return seq

    def wait_turn(self, txn: int, seq: int):
        """Process: block until ``seq`` heads its transaction's queue."""
        if not txn:
            return
        queue = self._pending.get(txn)
        while queue and queue[0] != seq:
            # The blocking write may still be in another shard's open
            # epoch; demand it be sealed so that shard's flusher can
            # reach it (the demand may transiently push that shard one
            # epoch past its staleness bound — see docs/sharding.md).
            for policy in self.policies:
                policy.demand_close(txn, seq)
            gate = self.sim.event("txn-order")
            self._gates.setdefault(txn, []).append(gate)
            yield gate

    def mark_persisted(self, txn: int, seq: int) -> None:
        """A write of ``txn`` reached the persist domain."""
        if not txn:
            return
        queue = self._pending.get(txn)
        if queue is not None:
            try:
                queue.remove(seq)
            except ValueError:  # pragma: no cover - tag/mark pair
                pass
            if not queue:
                self._pending.pop(txn, None)
        for gate in self._gates.pop(txn, []):
            gate.succeed()

    def unsafe_txns(self) -> Set[int]:
        """Transactions with any unpersisted buffered write, anywhere."""
        return {txn for txn, seqs in self._pending.items() if seqs}


class AsyncEpochPolicy(SchedulingPolicy):
    """Vilamb-style epoch-batched BMO scheduling with bounded
    staleness.  See the module docstring and
    ``docs/scheduling-modes.md`` for the durability contract; the
    sharded extension (per-shard epochs and watermarks, cross-shard
    write-ahead ordering, the merged consistent cut) is documented in
    ``docs/sharding.md``."""

    name = "async-epoch"
    durable_at_sfence = False

    def __init__(self, controller):
        super().__init__(controller)
        sched = self.cfg.scheduling
        self.epoch_writes = sched.epoch_writes
        self.staleness_epochs = sched.staleness_epochs
        self._buffer_ns = sched.buffer_ns
        #: Open epoch: (thread_id, line_addr, data, critical, txn,
        #: seq) in buffer order — which respects each core's fence
        #: order, because a fence only retires once its writes are
        #: buffered.  ``txn`` is the issuing core's transaction at
        #: buffer time; ``seq`` the global buffer sequence (0 when no
        #: coordinator — the single-shard machine needs neither).
        self._open: List[Tuple[int, int, bytes, bool, int, int]] = []
        #: Transactions whose commit record was buffered into the
        #: open epoch (critical writes carry the commit records).
        self._open_txns: Set[int] = set()
        #: Closed epochs awaiting (or under) flush, FIFO.
        self._closed: List[Tuple[List, Set[int]]] = []
        self._flusher = None
        self._stall_gates: List = []
        #: Durable watermark: transactions whose containing epoch has
        #: fully reached the persist domain.  Transaction ids are
        #: per-core counters; the watermark keeps a flat set because
        #: recovery scans one undo-log region per workload stream
        #: (the campaign/soak shape) — a multi-log split would key
        #: this by thread.
        self._flushed_txns: Set[int] = set()
        self._epochs_closed = 0
        self._epochs_flushed = 0
        #: Shared cross-shard write-ahead coordinator (``None`` on the
        #: single-shard machine).
        self._coordinator = self.system.txn_coordinator
        if self._coordinator is not None:
            self._coordinator.policies.append(self)
        stats = self.system.metrics.scope(
            self.system.scope_name("sched", controller.shard_id))
        self._c_buffered = stats.counter("epoch_buffered_writes")
        self._c_epochs_closed = stats.counter("epochs_closed")
        self._c_epochs_flushed = stats.counter("epochs_flushed")
        self._c_stalls = stats.counter("staleness_stalls")
        self._h_flush = stats.histogram("epoch_flush_ns")

    def writeback(self, thread_id, line_addr, data, critical, start):
        mc = self.controller
        # Bounded staleness: stall while the maximum number of closed
        # epochs is still awaiting flush.  The invariant afterwards:
        # closed - flushed <= staleness_epochs at every instant (a
        # cross-shard demand-close may transiently add one epoch).
        while self._epochs_closed - self._epochs_flushed \
                >= self.staleness_epochs:
            self._c_stalls.add()
            gate = self.sim.event("epoch-room")
            self._stall_gates.append(gate)
            yield gate
        yield self.sim.delay(self._buffer_ns)
        txn = self.system.cores[thread_id].current_txn_id
        seq = self._coordinator.tag(txn) \
            if self._coordinator is not None else 0
        self._open.append((thread_id, line_addr, data, critical,
                           txn, seq))
        self._c_buffered.add()
        if critical and txn:
            # Critical writebacks carry transaction commit records;
            # remember the owning transaction so the watermark can
            # promote it when this epoch is fully durable.
            self._open_txns.add(txn)
        now = self.sim.now
        mc._h_critical_write.observe(now - start)
        mc._trace(thread_id, line_addr, start, now, now, now, critical)
        if len(self._open) >= self.epoch_writes:
            self._close_epoch()

    def run_bmos(self, thread_id, line_addr, data):  # pragma: no cover
        raise SimulationError(
            "async-epoch runs BMOs from its flusher, not inline")

    def _close_epoch(self) -> None:
        if not self._open:
            return
        self._closed.append((self._open, self._open_txns))
        self._open, self._open_txns = [], set()
        self._epochs_closed += 1
        self._c_epochs_closed.add()
        if self._flusher is None or self._flusher.triggered:
            self._flusher = self.sim.process(self._flush(),
                                             name="epoch-flush")

    def demand_close(self, txn: int, before_seq: int) -> None:
        """Coordinator callback: seal the open epoch if it holds an
        earlier write of ``txn`` that another shard's flusher is
        blocked on."""
        for entry in self._open:
            if entry[4] == txn and entry[5] < before_seq:
                self._close_epoch()
                return

    def _flush(self):
        """Background process: replay closed epochs, oldest first,
        through the normal per-write BMO/persist path.  Strictly
        sequential, so the persist domain always holds a *prefix* of
        this shard's buffered write stream — the property torn-epoch
        recovery stands on.  On the sharded machine each write also
        waits its cross-shard turn within its transaction before
        persisting (write-ahead across shards)."""
        mc = self.controller
        coord = self._coordinator
        while self._closed:
            writes, txns = self._closed[0]
            start = self.sim.now
            for thread_id, line_addr, data, critical, txn, seq in writes:
                ctx = self.system.pipeline.make_context(
                    addr=line_addr, data=data)
                yield from self.system.executor.run_subops(ctx)
                if coord is not None:
                    yield from coord.wait_turn(txn, seq)
                yield from mc._persist(ctx, critical)
                if coord is not None:
                    coord.mark_persisted(txn, seq)
            # Everything in this epoch is accepted into the ADR
            # domain: advance the durable watermark atomically (no
            # yield between the last persist and this update).
            self._closed.pop(0)
            self._epochs_flushed += 1
            self._c_epochs_flushed.add()
            self._h_flush.observe(self.sim.now - start)
            self._flushed_txns.update(txns)
            gates, self._stall_gates = self._stall_gates, []
            for gate in gates:
                gate.succeed()

    def quiesce(self) -> None:
        # Clean shutdown: seal the open epoch; the caller's background
        # drain runs the flusher to empty, so a completed run is fully
        # durable and its final image matches the strict modes.
        self._close_epoch()

    def known_txns(self) -> Set[int]:
        """Every transaction whose commit record this shard has seen
        (buffered, awaiting flush, or watermarked) — the id universe
        the merged consistent cut walks."""
        txns = set(self._flushed_txns) | set(self._open_txns)
        for _writes, epoch_txns in self._closed:
            txns |= epoch_txns
        return txns

    def crash_metadata(self) -> Dict:
        return {
            "mode": self.name,
            "epoch_writes": self.epoch_writes,
            "staleness_epochs": self.staleness_epochs,
            "epochs_closed": self._epochs_closed,
            "epochs_flushed": self._epochs_flushed,
            "flushed_txns": sorted(self._flushed_txns),
        }


def merge_crash_metadata(policies, coordinator) -> Optional[Dict]:
    """Merge per-shard policy crash metadata into one scheduling dict.

    ``shards=1``: the single policy's dict (or ``None``), verbatim —
    recovery sees exactly the pre-sharding snapshot.

    Sharded async-epoch: the merged ``flushed_txns`` is the **minimum
    cross-shard consistent cut** — the longest prefix, in transaction
    id order over every transaction any shard has seen, of
    transactions that are watermarked on the shard holding their
    commit record *and* have no unpersisted write on any shard.  A
    transaction failing either test is demoted, and so is everything
    after it (a later transaction may depend on its state); demotion
    is always possible because the write-ahead coordinator persisted
    undo backups before data.  Legacy keys keep their meaning
    (``epochs_closed``/``epochs_flushed`` become totals) so
    ``repro.consistency.recovery`` is topology-blind; the per-shard
    detail rides along under ``per_shard``.
    """
    metas = [policy.crash_metadata() for policy in policies]
    if len(metas) == 1:
        return metas[0]
    if all(meta is None for meta in metas):
        return None
    flushed: Set[int] = set()
    known: Set[int] = set()
    for policy in policies:
        flushed |= policy._flushed_txns
        known |= policy.known_txns()
    unsafe = coordinator.unsafe_txns() if coordinator is not None \
        else set()
    candidate = flushed - unsafe
    cut = []
    for txn in sorted(known | unsafe):
        if txn not in candidate:
            break
        cut.append(txn)
    return {
        "mode": metas[0]["mode"],
        "epoch_writes": metas[0]["epoch_writes"],
        "staleness_epochs": metas[0]["staleness_epochs"],
        "epochs_closed": sum(m["epochs_closed"] for m in metas),
        "epochs_flushed": sum(m["epochs_flushed"] for m in metas),
        "flushed_txns": cut,
        "shards": len(metas),
        "per_shard": metas,
    }


POLICIES = {
    policy.name: policy
    for policy in (SerializedPolicy, ParallelPolicy, JanusPolicy,
                   IdealPolicy, CoalescedPolicy, AsyncEpochPolicy)
}


def build_policy(controller) -> SchedulingPolicy:
    """Instantiate the policy for ``controller.cfg.mode``."""
    cls = POLICIES.get(controller.cfg.mode)
    if cls is None:  # pragma: no cover - validated by SystemConfig
        raise SimulationError(
            f"no scheduling policy for mode {controller.cfg.mode!r}")
    return cls(controller)
