"""Write-path scheduling policies (the mode/policy abstraction).

Every :class:`~repro.core.machine.MemoryController` owns exactly one
:class:`SchedulingPolicy`, selected by ``SystemConfig.mode``.  The
controller handles the mode-independent mechanics of a writeback
(cache transfer, reading the dirty line); the policy decides *when*
the BMO work runs and *what a completed writeback means* for
durability — the four-mode consistency contract is documented in
``docs/scheduling-modes.md``.

Strict policies (``serialized``, ``parallel``, ``janus``): the
writeback process returns only after the write (and, when required,
its metadata) is accepted into the ADR persist domain, so ``sfence``
implies durability.

``ideal``: BMOs and persistence run off the critical path entirely —
the paper's non-blocking upper bound (oracle, not buildable hardware).

``coalesced`` (Freij et al., *Streamlining Integrity Tree Updates*):
dataflow execution like ``parallel``, plus write-queue-level Merkle
path coalescing — temporally-overlapping writebacks whose integrity
paths share a tree ancestor charge that ancestor's hash once per
batch.  The discount is timing-only: the functional commit path is
byte-identical to ``serialized`` because the commit still recomputes
or freshness-checks the path through the PR-7 memoization counter
(``MerkleTree.mutations`` / ``IntegrityBmo._snapshot_fresh``), which
is exactly what makes a shared pending node update safe to not
re-hash.

``async-epoch`` (Vilamb-style): writebacks park in a volatile epoch
buffer and ``sfence`` completes once buffered — durability is
*deferred*.  Every ``epoch_writes`` buffered writes the epoch closes
and a background flusher replays it, in order, through the normal
per-write BMO/persist path.  At most ``staleness_epochs`` closed
epochs may be awaiting flush before new writebacks stall (the
staleness dial).  After an epoch's last write is accepted into the
persist domain the policy advances a small durable watermark
(mirroring Vilamb's epoch counter in battery-backed space); recovery
uses it to demote transactions whose commit records landed during a
torn (partially-flushed) epoch — see
``repro.consistency.recovery.RecoveredState.rollback_undo_log``.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import SimulationError


class SchedulingPolicy:
    """Base class: one policy instance per memory controller."""

    name = ""
    #: ``True`` when a completed writeback (observed by ``sfence``)
    #: implies the write is in the ADR persist domain.
    durable_at_sfence = True

    def __init__(self, controller):
        self.controller = controller
        self.system = controller.system
        self.sim = controller.sim
        self.cfg = controller.cfg

    # -- the write path ------------------------------------------------
    def writeback(self, thread_id: int, line_addr: int, data: bytes,
                  critical: bool, start: float):
        """Process: mode-specific tail of one writeback.

        The controller has already charged the cache transfer and read
        the dirty line; the default (strict) shape runs the BMOs, then
        persists, then completes — so ``sfence`` implies durability.
        """
        mc = self.controller
        mc_arrival = self.sim.now
        ctx = yield from self.run_bmos(thread_id, line_addr, data)
        bmo_done = self.sim.now
        yield from mc._persist(ctx, critical)
        mc._h_critical_write.observe(self.sim.now - start)
        mc._trace(thread_id, line_addr, start, mc_arrival, bmo_done,
                  self.sim.now, critical)

    def run_bmos(self, thread_id: int, line_addr: int, data: bytes):
        """Process: run the BMO pipeline for one write; returns ctx."""
        raise NotImplementedError

    # -- lifecycle hooks -----------------------------------------------
    def quiesce(self) -> None:
        """Flush any relaxed state at clean shutdown (called by
        ``NvmSystem.run_programs`` before the background drain)."""

    def crash_metadata(self) -> Optional[Dict]:
        """Durable policy state contributed to the crash snapshot
        (``metadata["scheduling"]``), or ``None``."""
        return None


class SerializedPolicy(SchedulingPolicy):
    """Baseline: BMOs as one monolithic serial block per write."""

    name = "serialized"

    def run_bmos(self, thread_id, line_addr, data):
        ctx = self.system.pipeline.make_context(addr=line_addr,
                                                data=data)
        yield from self.system.executor.run_serialized(ctx)
        return ctx


class ParallelPolicy(SchedulingPolicy):
    """Dataflow execution of the sub-op graph (oracle-only mode —
    see docs/scheduling-modes.md: real BMT engines cannot start
    dependent sub-ops before their inputs exist without the Janus
    pre-execution hardware, so this point is an upper bound used by
    the differential oracles and Fig. 9/13, not a buildable design)."""

    name = "parallel"

    def run_bmos(self, thread_id, line_addr, data):
        ctx = self.system.pipeline.make_context(addr=line_addr,
                                                data=data)
        yield from self.system.executor.run_subops(ctx)
        return ctx


class JanusPolicy(SchedulingPolicy):
    """Pre-execution: consume IRB results, finish what is stale."""

    name = "janus"

    def run_bmos(self, thread_id, line_addr, data):
        ctx, _fully = yield from self.system.janus.service_write(
            thread_id, line_addr, data)
        return ctx


class IdealPolicy(SchedulingPolicy):
    """Non-blocking writeback: all BMO/persist work off the critical
    path.  Same-line writes chain so commits keep program order —
    being off the critical path must not reorder a line's final
    contents (hypothesis found exactly that bug)."""

    name = "ideal"

    def __init__(self, controller):
        super().__init__(controller)
        self._line_chains: Dict[int, object] = {}

    def writeback(self, thread_id, line_addr, data, critical, start):
        mc = self.controller
        mc_arrival = self.sim.now
        previous = self._line_chains.get(line_addr)
        proc = self.sim.process(
            self._background(line_addr, data, critical,
                             wait_for=previous),
            name="ideal-bg")
        self._line_chains[line_addr] = proc
        mc._h_critical_write.observe(self.sim.now - start)
        mc._trace(thread_id, line_addr, start, mc_arrival, mc_arrival,
                  self.sim.now, critical)
        return
        yield  # pragma: no cover — keeps this a generator

    def _background(self, line_addr, data, critical, wait_for=None):
        if wait_for is not None and not wait_for.triggered:
            yield wait_for
        ctx = self.system.pipeline.make_context(addr=line_addr,
                                                data=data)
        yield from self.system.executor.run_subops(ctx)
        yield from self.controller._persist(ctx, critical)


class CoalescedPolicy(ParallelPolicy):
    """Write-queue-level Merkle path coalescing (Freij et al.).

    Timing model: writebacks in flight at the same time form a
    *batch*; within a batch, the first write touching an integrity
    tree node at a given level pays that level's hash, every other
    write sharing the node rides the same pending update for free.
    The ledger is per-``(sub-op level, node index)`` keyed by batch
    id; a batch ends when the in-flight count drains to zero, so
    batching is deterministic (simulation order, not wall clock).

    Functional model: unchanged.  The commit path recomputes (or
    freshness-validates via ``MerkleTree.mutations``) every path it
    installs, so the final image is byte-identical to ``serialized``
    — asserted by ``repro.validate.oracles.check_mode_equivalence``.
    """

    name = "coalesced"

    def __init__(self, controller):
        super().__init__(controller)
        integrity = self.system.pipeline.by_name.get("integrity")
        self._integrity = integrity
        #: sub-op name -> leaves covered per node at that level.
        self._strides: Dict[str, int] = {}
        if integrity is not None:
            arity = integrity.tree.arity
            self._strides = {
                f"I{level}": arity ** (level - 1)
                for level in range(1, integrity.tree.height + 1)}
        self._batch = 0
        self._inflight = 0
        #: (sub-op, node index) -> batch id that already paid for it.
        self._charged: Dict[Tuple[str, int], int] = {}
        stats = self.system.metrics.scope("sched")
        self._c_batches = stats.counter("coalesce_batches")
        self._c_coalesced = stats.counter("coalesced_node_updates")
        self._c_charged = stats.counter("charged_node_updates")
        self.system.executor.timing_policy = self

    def writeback(self, thread_id, line_addr, data, critical, start):
        if self._inflight == 0:
            self._batch += 1
            self._charged.clear()
            self._c_batches.add()
        self._inflight += 1
        try:
            yield from super().writeback(thread_id, line_addr, data,
                                         critical, start)
        finally:
            self._inflight -= 1

    def adjust_timing(self, name: str, ctx, total: int,
                      occupancy: int) -> Tuple[int, int]:
        """Executor hook: discount an integrity level whose tree node
        was already charged by an overlapping write in this batch."""
        stride = self._strides.get(name)
        if stride is None or self._integrity is None \
                or ctx.addr is None:
            return total, occupancy
        node = self._integrity.leaf_index(ctx.addr) // stride
        key = (name, node)
        if self._charged.get(key) == self._batch:
            self._c_coalesced.add()
            return 0, 0
        self._charged[key] = self._batch
        self._c_charged.add()
        return total, occupancy


class AsyncEpochPolicy(SchedulingPolicy):
    """Vilamb-style epoch-batched BMO scheduling with bounded
    staleness.  See the module docstring and
    ``docs/scheduling-modes.md`` for the durability contract."""

    name = "async-epoch"
    durable_at_sfence = False

    def __init__(self, controller):
        super().__init__(controller)
        sched = self.cfg.scheduling
        self.epoch_writes = sched.epoch_writes
        self.staleness_epochs = sched.staleness_epochs
        self._buffer_ns = sched.buffer_ns
        #: Open epoch: (thread_id, line_addr, data, critical) in
        #: buffer order — which respects each core's fence order,
        #: because a fence only retires once its writes are buffered.
        self._open: List[Tuple[int, int, bytes, bool]] = []
        #: Transactions whose commit record was buffered into the
        #: open epoch (critical writes carry the commit records).
        self._open_txns: Set[int] = set()
        #: Closed epochs awaiting (or under) flush, FIFO.
        self._closed: List[Tuple[List, Set[int]]] = []
        self._flusher = None
        self._stall_gates: List = []
        #: Durable watermark: transactions whose containing epoch has
        #: fully reached the persist domain.  Transaction ids are
        #: per-core counters; the watermark keeps a flat set because
        #: recovery scans one undo-log region per workload stream
        #: (the campaign/soak shape) — a multi-log split would key
        #: this by thread.
        self._flushed_txns: Set[int] = set()
        self._epochs_closed = 0
        self._epochs_flushed = 0
        stats = self.system.metrics.scope("sched")
        self._c_buffered = stats.counter("epoch_buffered_writes")
        self._c_epochs_closed = stats.counter("epochs_closed")
        self._c_epochs_flushed = stats.counter("epochs_flushed")
        self._c_stalls = stats.counter("staleness_stalls")
        self._h_flush = stats.histogram("epoch_flush_ns")

    def writeback(self, thread_id, line_addr, data, critical, start):
        mc = self.controller
        # Bounded staleness: stall while the maximum number of closed
        # epochs is still awaiting flush.  The invariant afterwards:
        # closed - flushed <= staleness_epochs at every instant.
        while self._epochs_closed - self._epochs_flushed \
                >= self.staleness_epochs:
            self._c_stalls.add()
            gate = self.sim.event("epoch-room")
            self._stall_gates.append(gate)
            yield gate
        yield self.sim.delay(self._buffer_ns)
        self._open.append((thread_id, line_addr, data, critical))
        self._c_buffered.add()
        if critical:
            # Critical writebacks carry transaction commit records;
            # remember the owning transaction so the watermark can
            # promote it when this epoch is fully durable.
            txn = self.system.cores[thread_id].current_txn_id
            if txn:
                self._open_txns.add(txn)
        now = self.sim.now
        mc._h_critical_write.observe(now - start)
        mc._trace(thread_id, line_addr, start, now, now, now, critical)
        if len(self._open) >= self.epoch_writes:
            self._close_epoch()

    def run_bmos(self, thread_id, line_addr, data):  # pragma: no cover
        raise SimulationError(
            "async-epoch runs BMOs from its flusher, not inline")

    def _close_epoch(self) -> None:
        if not self._open:
            return
        self._closed.append((self._open, self._open_txns))
        self._open, self._open_txns = [], set()
        self._epochs_closed += 1
        self._c_epochs_closed.add()
        if self._flusher is None or self._flusher.triggered:
            self._flusher = self.sim.process(self._flush(),
                                             name="epoch-flush")

    def _flush(self):
        """Background process: replay closed epochs, oldest first,
        through the normal per-write BMO/persist path.  Strictly
        sequential, so the persist domain always holds a *prefix* of
        the buffered write stream — the property torn-epoch recovery
        stands on."""
        mc = self.controller
        while self._closed:
            writes, txns = self._closed[0]
            start = self.sim.now
            for thread_id, line_addr, data, critical in writes:
                ctx = self.system.pipeline.make_context(
                    addr=line_addr, data=data)
                yield from self.system.executor.run_subops(ctx)
                yield from mc._persist(ctx, critical)
            # Everything in this epoch is accepted into the ADR
            # domain: advance the durable watermark atomically (no
            # yield between the last persist and this update).
            self._closed.pop(0)
            self._epochs_flushed += 1
            self._c_epochs_flushed.add()
            self._h_flush.observe(self.sim.now - start)
            self._flushed_txns.update(txns)
            gates, self._stall_gates = self._stall_gates, []
            for gate in gates:
                gate.succeed()

    def quiesce(self) -> None:
        # Clean shutdown: seal the open epoch; the caller's background
        # drain runs the flusher to empty, so a completed run is fully
        # durable and its final image matches the strict modes.
        self._close_epoch()

    def crash_metadata(self) -> Dict:
        return {
            "mode": self.name,
            "epoch_writes": self.epoch_writes,
            "staleness_epochs": self.staleness_epochs,
            "epochs_closed": self._epochs_closed,
            "epochs_flushed": self._epochs_flushed,
            "flushed_txns": sorted(self._flushed_txns),
        }


POLICIES = {
    policy.name: policy
    for policy in (SerializedPolicy, ParallelPolicy, JanusPolicy,
                   IdealPolicy, CoalescedPolicy, AsyncEpochPolicy)
}


def build_policy(controller) -> SchedulingPolicy:
    """Instantiate the policy for ``controller.cfg.mode``."""
    cls = POLICIES.get(controller.cfg.mode)
    if cls is None:  # pragma: no cover - validated by SystemConfig
        raise SimulationError(
            f"no scheduling policy for mode {controller.cfg.mode!r}")
    return cls(controller)
