"""Event-driven execution of BMO sub-operations on shared units.

Three execution styles, matching the paper's design points:

* **serialized** — the BMOs run as monolithic blocks, back to back,
  occupying one unit for their summed latency (the baseline system);
* **dataflow** — each sub-operation becomes a simulator process that
  waits for its dependencies, competes for a BMO unit, charges its
  latency, runs its functional action, and signals completion.  With
  ``k`` units this *is* list scheduling, and contention across
  concurrent writes/cores emerges naturally from the shared
  :class:`repro.sim.Resource`;
* **partial/resume** — the same dataflow engine restricted to a subset
  of sub-ops, used for pre-execution (run only what the available
  inputs allow) and for completing or refreshing a write whose
  pre-executed results were partially stale.
"""

from typing import Dict, Iterable, Optional, Set

from repro.bmo.base import BmoContext
from repro.bmo.pipeline import BmoPipeline
from repro.common.errors import SimulationError
from repro.obs.tracer import NULL_TRACER
from repro.sim import Resource, Simulator, quantize_ns
from repro.sim.engine import Process, SimEvent
from repro.sim.stats import StatSet


class BmoExecutor:
    """Schedules sub-operations of one pipeline on shared BMO units."""

    def __init__(self, sim: Simulator, pipeline: BmoPipeline,
                 units: Resource, stats: Optional[StatSet] = None,
                 pipeline_fraction: float = 0.25, tracer=None):
        if not 0.0 < pipeline_fraction <= 1.0:
            raise SimulationError(
                "pipeline_fraction must be in (0, 1]")
        self.sim = sim
        self.pipeline = pipeline
        self.units = units
        #: BMO units are pipelined engines: a sub-op occupies its unit
        #: for ``latency * pipeline_fraction`` (the initiation
        #: interval) while its results appear after the full latency.
        self.pipeline_fraction = pipeline_fraction
        self.stats = stats or StatSet("bmo-executor")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Hot metric handles: resolved once, not per sub-operation.
        self._c_subops_executed = self.stats.counter("subops_executed")
        self._c_pre_exec_requests = \
            self.stats.counter("pre_exec_requests")
        self._c_stale_rerun = self.stats.counter("stale_subops_rerun")
        self._h_serialized_block = \
            self.stats.histogram("serialized_block_ns")
        self._h_subop: Dict[str, object] = {}
        # Interned per-subop strings: building "done:<name>" /
        # "subop:<name>" per write showed up in dispatch profiles.
        self._done_names = {n: "done:" + n
                            for n in pipeline.graph.subops}
        self._proc_names = {n: "subop:" + n
                            for n in pipeline.graph.subops}
        # Per-subop (total, occupancy) quantized once: latencies and
        # the pipeline fraction are fixed for the executor's lifetime,
        # so there is nothing to recompute per dispatched sub-op.
        self._op_timing = {}
        for n, op in pipeline.graph.subops.items():
            if op.latency_ns > 0:
                total = quantize_ns(op.latency_ns)
                occupancy = min(total, quantize_ns(
                    op.latency_ns * pipeline_fraction))
            else:
                total = occupancy = 0
            self._op_timing[n] = (total, occupancy)
        #: Optional per-execution timing adjustor installed by a
        #: scheduling policy (``repro.bmo.policy``): called with
        #: ``(name, ctx, total, occupancy)`` before each timed sub-op
        #: and may return a discounted ``(total, occupancy)`` — the
        #: coalesced mode uses this to charge a shared integrity-tree
        #: node once per write batch.  Timing-only: functional
        #: execution and commit are untouched.
        self.timing_policy = None
        serial = pipeline.serial_latency()
        self._serial_total = quantize_ns(serial)
        self._serial_occupancy = min(
            self._serial_total, quantize_ns(serial * pipeline_fraction))

    # -- serialized baseline ---------------------------------------------
    def run_serialized(self, ctx: BmoContext):
        """Process: run all BMOs as one monolithic, serial block.

        The block occupies a unit for its initiation interval and its
        results appear after the full serial latency — the same
        pipelined-engine model the dataflow path uses, so serialized
        vs. parallel compares latency composition, not unit counts.
        """
        start = self.sim.now
        # Quantized occupancy/shadow split, precomputed in __init__ so
        # the two delays sum to exactly the quantized serial latency
        # (no per-leg rounding).
        total = self._serial_total
        occupancy = self._serial_occupancy
        grant = self.units.acquire()
        try:
            yield grant
        except BaseException:
            self.units.cancel(grant)
            raise
        # The unit frees itself exactly at the end of the initiation
        # interval via a scheduled callback; the process sleeps once
        # for the full latency instead of resuming twice.
        self.sim._schedule(occupancy, self.units.release)
        yield self.sim.delay(total)
        self.pipeline.execute_all(ctx)
        self._h_serialized_block.observe(self.sim.now - start)
        if self.tracer.enabled:
            self.tracer.complete(
                "serialized-bmos", "bmo", ("bmo", "serialized"),
                start_ns=start, dur_ns=self.sim.now - start,
                args={"addr": ctx.addr})
        return ctx

    # -- dataflow execution ------------------------------------------------
    def run_subops(self, ctx: BmoContext,
                   names: Optional[Iterable[str]] = None):
        """Process: execute ``names`` (default: all not yet completed)
        as a dependency-respecting dataflow on the shared units.
        Completes when every requested sub-op has run.
        """
        graph = self.pipeline.graph
        if names is None:
            targets = [n for n in graph.topological_order
                       if n not in ctx.completed]
        else:
            targets = [n for n in graph.topological_order
                       if n in set(names) and n not in ctx.completed]
        if not targets:
            return ctx
        target_set: Set[str] = set(targets)
        for name in targets:
            for dep in graph.subops[name].deps:
                if dep not in target_set and dep not in ctx.completed:
                    raise SimulationError(
                        f"cannot run {name!r}: dependency {dep!r} neither "
                        f"completed nor scheduled")
        sim = self.sim
        done_names = self._done_names
        proc_names = self._proc_names
        # Direct constructor calls: the sim.event()/sim.process()
        # factories are one extra frame per sub-op on the hottest
        # allocation site in the write path.
        done: Dict[str, object] = {
            name: SimEvent(sim, done_names[name]) for name in targets}
        children = [
            Process(sim, self._run_one(ctx, name, done),
                    proc_names[name])
            for name in targets
        ]
        if len(children) == 1:
            yield children[0]
        else:
            yield sim.all_of(children)
        return ctx

    def _run_one(self, ctx: BmoContext, name: str,
                 done: Dict[str, object]):
        op = self.pipeline.graph.subops[name]
        waits = [done[d] for d in op.deps if d in done]
        if len(waits) == 1:
            # Bypass the AllOf wrapper for single-dependency chains —
            # the common case in the default pipeline's hash ladders.
            yield waits[0]
        elif waits:
            yield self.sim.all_of(waits)
        sim = self.sim
        ready = sim.now  # dependencies satisfied; queueing begins
        total, occupancy = self._op_timing[name]
        if total and self.timing_policy is not None:
            total, occupancy = self.timing_policy.adjust_timing(
                name, ctx, total, occupancy)
        if op.latency_ns > 0:
            grant = self.units.acquire()
            try:
                yield grant
            except BaseException:
                self.units.cancel(grant)
                raise
            exec_start = sim.now
            sim._schedule(occupancy, self.units.release)
            yield sim.delay(total)
            op.execute(ctx)
            if self.tracer.enabled:
                self.tracer.complete(
                    name, "bmo", ("bmo", op.bmo),
                    start_ns=exec_start,
                    dur_ns=self.sim.now - exec_start,
                    args={"addr": ctx.addr,
                          "unit_wait_ns": exec_start - ready})
        else:
            op.execute(ctx)
        self._c_subops_executed.add()
        hist = self._h_subop.get(name)
        if hist is None:
            hist = self._h_subop[name] = \
                self.stats.histogram(f"subop.{name}_ns")
        hist.observe(self.sim.now - ready)
        done[name].succeed()

    # -- pre-execution helpers -----------------------------------------------
    def pre_executable(self, ctx: BmoContext) -> list:
        """Sub-ops whose external requirements ``ctx`` can satisfy."""
        return self.pipeline.graph.runnable_with(ctx.available_inputs)

    def run_pre_execution(self, ctx: BmoContext):
        """Process: run everything the context's inputs allow."""
        runnable = self.pre_executable(ctx)
        self._c_pre_exec_requests.add()
        yield from self.run_subops(ctx, runnable)
        return ctx

    def refresh_and_complete(self, ctx: BmoContext):
        """Process: bring ``ctx`` to a committed-ready state.

        Re-runs stale sub-ops (and their dependents) until the context
        is both complete and fresh.  Called by the memory controller
        with the write's final address and data already installed.
        """
        if ctx.addr is None or ctx.data is None:
            raise SimulationError("write context needs both addr and data")
        while True:
            stale = self.pipeline.stale_subops(ctx)
            if stale:
                self._c_stale_rerun.add(len(stale))
                self.pipeline.invalidate(ctx, stale)
            remaining = [n for n in self.pipeline.graph.topological_order
                         if n not in ctx.completed]
            if not remaining:
                return ctx
            yield from self.run_subops(ctx, remaining)
