"""Event-driven execution of BMO sub-operations on shared units.

Three execution styles, matching the paper's design points:

* **serialized** — the BMOs run as monolithic blocks, back to back,
  occupying one unit for their summed latency (the baseline system);
* **dataflow** — each sub-operation becomes a simulator process that
  waits for its dependencies, competes for a BMO unit, charges its
  latency, runs its functional action, and signals completion.  With
  ``k`` units this *is* list scheduling, and contention across
  concurrent writes/cores emerges naturally from the shared
  :class:`repro.sim.Resource`;
* **partial/resume** — the same dataflow engine restricted to a subset
  of sub-ops, used for pre-execution (run only what the available
  inputs allow) and for completing or refreshing a write whose
  pre-executed results were partially stale.
"""

from typing import Dict, Iterable, Optional, Set

from repro.bmo.base import BmoContext
from repro.bmo.pipeline import BmoPipeline
from repro.common.errors import SimulationError
from repro.obs.tracer import NULL_TRACER
from repro.sim import Resource, Simulator
from repro.sim.stats import StatSet


class BmoExecutor:
    """Schedules sub-operations of one pipeline on shared BMO units."""

    def __init__(self, sim: Simulator, pipeline: BmoPipeline,
                 units: Resource, stats: Optional[StatSet] = None,
                 pipeline_fraction: float = 0.25, tracer=None):
        if not 0.0 < pipeline_fraction <= 1.0:
            raise SimulationError(
                "pipeline_fraction must be in (0, 1]")
        self.sim = sim
        self.pipeline = pipeline
        self.units = units
        #: BMO units are pipelined engines: a sub-op occupies its unit
        #: for ``latency * pipeline_fraction`` (the initiation
        #: interval) while its results appear after the full latency.
        self.pipeline_fraction = pipeline_fraction
        self.stats = stats or StatSet("bmo-executor")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Hot metric handles: resolved once, not per sub-operation.
        self._c_subops_executed = self.stats.counter("subops_executed")
        self._c_pre_exec_requests = \
            self.stats.counter("pre_exec_requests")
        self._c_stale_rerun = self.stats.counter("stale_subops_rerun")
        self._h_serialized_block = \
            self.stats.histogram("serialized_block_ns")
        self._h_subop: Dict[str, object] = {}

    # -- serialized baseline ---------------------------------------------
    def run_serialized(self, ctx: BmoContext):
        """Process: run all BMOs as one monolithic, serial block.

        The block occupies a unit for its initiation interval and its
        results appear after the full serial latency — the same
        pipelined-engine model the dataflow path uses, so serialized
        vs. parallel compares latency composition, not unit counts.
        """
        start = self.sim.now
        latency = self.pipeline.serial_latency()
        yield self.units.acquire()
        try:
            yield self.sim.timeout(latency * self.pipeline_fraction)
        finally:
            self.units.release()
        yield self.sim.timeout(latency * (1.0 - self.pipeline_fraction))
        self.pipeline.execute_all(ctx)
        self._h_serialized_block.observe(self.sim.now - start)
        if self.tracer.enabled:
            self.tracer.complete(
                "serialized-bmos", "bmo", ("bmo", "serialized"),
                start_ns=start, dur_ns=self.sim.now - start,
                args={"addr": ctx.addr})
        return ctx

    # -- dataflow execution ------------------------------------------------
    def run_subops(self, ctx: BmoContext,
                   names: Optional[Iterable[str]] = None):
        """Process: execute ``names`` (default: all not yet completed)
        as a dependency-respecting dataflow on the shared units.
        Completes when every requested sub-op has run.
        """
        graph = self.pipeline.graph
        if names is None:
            targets = [n for n in graph.topological_order
                       if n not in ctx.completed]
        else:
            targets = [n for n in graph.topological_order
                       if n in set(names) and n not in ctx.completed]
        if not targets:
            return ctx
        target_set: Set[str] = set(targets)
        for name in targets:
            for dep in graph.subops[name].deps:
                if dep not in target_set and dep not in ctx.completed:
                    raise SimulationError(
                        f"cannot run {name!r}: dependency {dep!r} neither "
                        f"completed nor scheduled")
        done: Dict[str, object] = {
            name: self.sim.event(f"done:{name}") for name in targets}
        children = [
            self.sim.process(self._run_one(ctx, name, done),
                             name=f"subop:{name}")
            for name in targets
        ]
        yield self.sim.all_of(children)
        return ctx

    def _run_one(self, ctx: BmoContext, name: str,
                 done: Dict[str, object]):
        op = self.pipeline.graph.subops[name]
        waits = [done[d] for d in op.deps if d in done]
        if waits:
            yield self.sim.all_of(waits)
        ready = self.sim.now  # dependencies satisfied; queueing begins
        if op.latency_ns > 0:
            occupancy = op.latency_ns * self.pipeline_fraction
            yield self.units.acquire()
            exec_start = self.sim.now
            try:
                yield self.sim.timeout(occupancy)
            finally:
                self.units.release()
            yield self.sim.timeout(op.latency_ns - occupancy)
            op.execute(ctx)
            if self.tracer.enabled:
                self.tracer.complete(
                    name, "bmo", ("bmo", op.bmo),
                    start_ns=exec_start,
                    dur_ns=self.sim.now - exec_start,
                    args={"addr": ctx.addr,
                          "unit_wait_ns": exec_start - ready})
        else:
            op.execute(ctx)
        self._c_subops_executed.add()
        hist = self._h_subop.get(name)
        if hist is None:
            hist = self._h_subop[name] = \
                self.stats.histogram(f"subop.{name}_ns")
        hist.observe(self.sim.now - ready)
        done[name].succeed()

    # -- pre-execution helpers -----------------------------------------------
    def pre_executable(self, ctx: BmoContext) -> list:
        """Sub-ops whose external requirements ``ctx`` can satisfy."""
        return self.pipeline.graph.runnable_with(ctx.available_inputs)

    def run_pre_execution(self, ctx: BmoContext):
        """Process: run everything the context's inputs allow."""
        runnable = self.pre_executable(ctx)
        self._c_pre_exec_requests.add()
        yield from self.run_subops(ctx, runnable)
        return ctx

    def refresh_and_complete(self, ctx: BmoContext):
        """Process: bring ``ctx`` to a committed-ready state.

        Re-runs stale sub-ops (and their dependents) until the context
        is both complete and fresh.  Called by the memory controller
        with the write's final address and data already installed.
        """
        if ctx.addr is None or ctx.data is None:
            raise SimulationError("write context needs both addr and data")
        while True:
            stale = self.pipeline.stale_subops(ctx)
            if stale:
                self._c_stale_rerun.add(len(stale))
                self.pipeline.invalidate(ctx, stale)
            remaining = [n for n in self.pipeline.graph.topological_order
                         if n not in ctx.completed]
            if not remaining:
                return ctx
            yield from self.run_subops(ctx, remaining)
