"""Start-Gap wear-leveling as a BMO (Table 1: ~1 ns).

Start-Gap (Qureshi et al., MICRO'09) keeps one spare "gap" slot per
region and, every ``gap_write_interval`` writes, slides the line next
to the gap into it.  Over time every logical line visits every
physical slot, evening out cell wear without a full remap table.

We implement the permutation *operationally* (explicit logical<->
physical maps plus a gap cursor), which is exact and lets property
tests assert the two invariants that matter: the mapping is always a
bijection, and a full rotation returns every line to a shifted slot
exactly once.

Sub-operation ``W1`` resolves the physical address — address-
dependent, so it pre-executes with the address alone.  When enabled,
the pipeline routes the encryption counter lookup through the
*logical* address (pads are address-stable across remaps), and the
memory controller writes the device at the physical slot.
"""

from typing import Dict, Tuple

from repro.bmo.base import ADDR, BackendOperation, BmoContext, SubOp
from repro.common.config import BmoLatencies
from repro.common.errors import SimulationError


class StartGap:
    """One Start-Gap region over ``lines`` logical lines."""

    def __init__(self, lines: int, line_bytes: int = 64,
                 gap_write_interval: int = 100):
        if lines < 1:
            raise SimulationError("start-gap region needs >= 1 line")
        self.lines = lines
        self.line_bytes = line_bytes
        self.gap_write_interval = gap_write_interval
        # Physical slots 0..lines (one extra: the gap).
        self._phys_of: Dict[int, int] = {l: l for l in range(lines)}
        self._logical_at: Dict[int, int] = {l: l for l in range(lines)}
        self._gap = lines  # physical slot currently empty
        self._writes = 0
        self.moves = 0

    def physical_slot(self, logical_line: int) -> int:
        if not 0 <= logical_line < self.lines:
            raise SimulationError(
                f"logical line {logical_line} outside region")
        return self._phys_of[logical_line]

    def record_write(self) -> None:
        """Count a write; periodically move the gap one slot."""
        self._writes += 1
        if self._writes % self.gap_write_interval == 0:
            self._move_gap()

    def _move_gap(self) -> None:
        # The line in the slot "before" the gap slides into the gap.
        victim_slot = (self._gap - 1) % (self.lines + 1)
        logical = self._logical_at.pop(victim_slot, None)
        if logical is not None:
            self._phys_of[logical] = self._gap
            self._logical_at[self._gap] = logical
        self._gap = victim_slot
        self.moves += 1

    def mapping_is_bijective(self) -> bool:
        phys = sorted(self._phys_of.values())
        return len(set(phys)) == self.lines and self._gap not in phys


class WearLevelingBmo(BackendOperation):
    """Start-Gap address remapping as a pre-executable sub-operation."""

    name = "wear_leveling"

    def __init__(self, latencies: BmoLatencies, region_lines: int = 1 << 16,
                 line_bytes: int = 64, gap_write_interval: int = 100):
        super().__init__()
        self.lat = latencies
        self.line_bytes = line_bytes
        self.start_gap = StartGap(region_lines, line_bytes,
                                  gap_write_interval)

    def _w1(self, ctx: BmoContext) -> None:
        logical_line = (ctx.addr // self.line_bytes) % self.start_gap.lines
        slot = self.start_gap.physical_slot(logical_line)
        ctx.values["wl_slot"] = slot
        ctx.values["wl_addr"] = slot * self.line_bytes

    def subops(self) -> Tuple[SubOp, ...]:
        return (
            SubOp("W1", self.name, self.lat.wear_leveling_ns,
                  deps=(), external=frozenset({ADDR}), run=self._w1),
        )

    def commit(self, ctx: BmoContext) -> None:
        self.start_gap.record_write()

    def stale_subops(self, ctx: BmoContext) -> set:
        """A gap move between pre-execution and the write remaps the
        line: the resolved slot is stale."""
        if "wl_slot" not in ctx.values:
            return set()
        logical_line = (ctx.addr // self.line_bytes) % self.start_gap.lines
        if self.start_gap.physical_slot(logical_line) != \
                ctx.values["wl_slot"]:
            return {"W1"}
        return set()
