"""Counter-mode encryption as a decomposed BMO.

Sub-operations (paper §3.1):

* ``E1`` — generate the new counter (address-dependent),
* ``E2`` — generate the one-time pad ``OTP = En(counter | address)``,
* ``E3`` — encrypt the data with an XOR (needs the data; also gated on
  the dedup verdict when deduplication is in the pipeline, because
  duplicate writes are cancelled),
* ``E4`` — compute the MAC protecting the encrypted line (used by the
  integrity mechanism; paper Fig. 6).

``E1``/``E2`` transitively need only the address — they are the
paper's canonical example of address-dependent pre-execution.
"""

from typing import Tuple

from repro.bmo.base import (
    ADDR,
    BackendOperation,
    BmoContext,
    DATA,
    SubOp,
)
from repro.common.config import BmoLatencies
from repro.crypto.counter_mode import CounterModeEngine
from repro.crypto.primitives import mac_of


class EncryptionBmo(BackendOperation):
    """Counter-mode encryption with per-line counters."""

    name = "encryption"

    def __init__(self, latencies: BmoLatencies,
                 engine: CounterModeEngine = None,
                 with_dedup: bool = False):
        super().__init__()
        self.lat = latencies
        self.engine = engine or CounterModeEngine()
        self.with_dedup = with_dedup
        #: (addr, counter) -> MAC of the ciphertext written under that
        #: pad (co-located metadata; recovery uses it to detect
        #: device-level tampering).  Keyed by the pad identity, not
        #: the address alone, because a deduplicated/relocated
        #: ciphertext can outlive later writes to its original line.
        self.macs = {}

    # -- functional sub-op bodies -------------------------------------
    def _e1(self, ctx: BmoContext) -> None:
        ctx.values["counter"] = self.engine.next_counter(ctx.addr)

    def _e2(self, ctx: BmoContext) -> None:
        ctx.values["otp"] = self.engine.make_otp(
            ctx.addr, ctx.require("counter"))

    def _e3(self, ctx: BmoContext) -> None:
        if ctx.values.get("is_dup"):
            # Duplicate write: the data write is cancelled, nothing to
            # encrypt (inter-operation dependency D2 -> E3).
            ctx.values["ciphertext"] = None
            return
        ctx.values["ciphertext"] = self.engine.apply_pad(
            ctx.data, ctx.require("otp"))

    def _e4(self, ctx: BmoContext) -> None:
        ciphertext = ctx.values.get("ciphertext")
        if ciphertext is None:
            ctx.values["mac"] = None
            return
        ctx.values["mac"] = mac_of(ciphertext, ctx.require("counter"))

    def subops(self) -> Tuple[SubOp, ...]:
        e3_deps = ("E2",) + (("D2",) if self.with_dedup else ())
        return (
            SubOp("E1", self.name, self.lat.counter_gen_ns,
                  deps=(), external=frozenset({ADDR}), run=self._e1),
            SubOp("E2", self.name, self.lat.aes_ns,
                  deps=("E1",), run=self._e2),
            SubOp("E3", self.name, self.lat.xor_ns,
                  deps=e3_deps, external=frozenset({DATA}), run=self._e3),
            SubOp("E4", self.name, self.lat.sha1_ns,
                  deps=("E3",), run=self._e4),
        )

    # -- commit / staleness --------------------------------------------
    def commit(self, ctx: BmoContext) -> None:
        if ctx.values.get("is_dup"):
            return  # cancelled write: no counter consumed
        self.engine.commit_counter(ctx.addr, ctx.require("counter"))
        mac = ctx.values.get("mac")
        if mac is not None:
            self.macs[(ctx.addr, ctx.require("counter"))] = mac

    def stale_subops(self, ctx: BmoContext) -> set:
        """E1's pre-executed counter is stale if another write to the
        same line committed in between (§4.3.1, stale processor/memory
        state)."""
        if "counter" in ctx.values and \
                ctx.values["counter"] != self.engine.next_counter(ctx.addr):
            return {"E1"}
        return set()

    def unreconstructable_metadata(self) -> dict:
        return {"counters": self.engine.snapshot_counters(),
                "macs": dict(self.macs)}

    def restore_metadata(self, snapshot: dict) -> None:
        self.engine.restore_counters(snapshot["counters"])
        self.macs = dict(snapshot.get("macs", {}))
