"""Dependency-graph analysis over decomposed sub-operations.

Implements the paper's §3.1 formalism:

* two sub-op sets may run in parallel iff no dependency path connects
  them in either direction;
* a sub-op is *externally dependent* on an input iff a path connects
  the input to it — computed here as reachability from the ADDR/DATA
  pseudo-nodes;
* sub-ops whose closure is a subset of the available inputs can be
  pre-executed.

The graph also produces static schedules (serial and list-scheduled
parallel with ``k`` units), used both by the timeline example (Fig. 3)
and as a cross-check on the event-driven executor.
"""

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.bmo.base import ExternalInput, SubOp
from repro.common.errors import SimulationError


class DependencyGraph:
    """Immutable analysis view over a set of :class:`SubOp`."""

    def __init__(self, subops: Sequence[SubOp]):
        self.subops: Dict[str, SubOp] = {}
        for op in subops:
            if op.name in self.subops:
                raise SimulationError(f"duplicate sub-op name {op.name!r}")
            self.subops[op.name] = op
        for op in subops:
            for dep in op.deps:
                if dep not in self.subops:
                    raise SimulationError(
                        f"sub-op {op.name!r} depends on unknown {dep!r}")
        self._order = self._topological_order()
        self._closure = self._external_closure()

    # -- structure ---------------------------------------------------------
    def _topological_order(self) -> List[str]:
        indegree = {name: len(op.deps) for name, op in self.subops.items()}
        successors: Dict[str, List[str]] = {n: [] for n in self.subops}
        for name, op in self.subops.items():
            for dep in op.deps:
                successors[dep].append(name)
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in successors[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.subops):
            cyclic = set(self.subops) - set(order)
            raise SimulationError(f"dependency cycle among {sorted(cyclic)}")
        return order

    @property
    def topological_order(self) -> List[str]:
        return list(self._order)

    def successors(self, name: str) -> List[str]:
        return [n for n, op in self.subops.items() if name in op.deps]

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """All sub-ops reachable by following dependency edges forward."""
        seen: Set[str] = set()
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for succ in self.successors(node):
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return seen

    # -- external classification (paper Fig. 2b / Fig. 6) -------------------
    def _external_closure(self) -> Dict[str, FrozenSet[ExternalInput]]:
        closure: Dict[str, Set[ExternalInput]] = {}
        for name in self._order:
            op = self.subops[name]
            needs: Set[ExternalInput] = set(op.external)
            for dep in op.deps:
                needs |= closure[dep]
            closure[name] = needs
        return {name: frozenset(needs) for name, needs in closure.items()}

    def external_requirements(self, name: str) -> FrozenSet[ExternalInput]:
        """The inputs sub-op ``name`` transitively requires."""
        return self._closure[name]

    def classification(self) -> Dict[str, str]:
        """Map each sub-op to addr / data / both / none."""
        labels = {}
        for name, needs in self._closure.items():
            if needs == {ExternalInput.ADDR}:
                labels[name] = "addr"
            elif needs == {ExternalInput.DATA}:
                labels[name] = "data"
            elif needs == {ExternalInput.ADDR, ExternalInput.DATA}:
                labels[name] = "both"
            else:
                labels[name] = "none"
        return labels

    def runnable_with(self,
                      inputs: FrozenSet[ExternalInput]) -> List[str]:
        """Sub-ops whose entire requirement is covered by ``inputs`` —
        the pre-executable region for a request carrying ``inputs``.
        Returned in topological order.
        """
        return [name for name in self._order
                if self._closure[name] <= inputs]

    def can_parallelise(self, group_a: Iterable[str],
                        group_b: Iterable[str]) -> bool:
        """Paper §3.1: S1 parallel S2 iff no path in either direction."""
        set_a, set_b = set(group_a), set(group_b)
        if self.reachable_from(set_a) & set_b:
            return False
        if self.reachable_from(set_b) & set_a:
            return False
        return True

    # -- static schedules ----------------------------------------------------
    def serial_schedule(self,
                        bmo_order: Sequence[str]) -> "Schedule":
        """All sub-ops back to back, grouped by BMO in pipeline order.

        This is the baseline system: each monolithic BMO completes
        before the next starts.
        """
        slots = []
        clock = 0.0
        for bmo in bmo_order:
            for name in self._order:
                op = self.subops[name]
                if op.bmo != bmo:
                    continue
                slots.append((name, clock, clock + op.latency_ns))
                clock += op.latency_ns
        leftover = [n for n in self._order
                    if self.subops[n].bmo not in bmo_order]
        for name in leftover:
            op = self.subops[name]
            slots.append((name, clock, clock + op.latency_ns))
            clock += op.latency_ns
        return Schedule(slots)

    def parallel_schedule(self, units: int = 4,
                          done: Iterable[str] = (),
                          start_times: Dict[str, float] = None) -> "Schedule":
        """List schedule on ``units`` identical units respecting deps.

        ``done`` marks sub-ops already completed (pre-executed); they
        occupy no unit and are treated as finished at t=0.
        """
        if units <= 0:
            raise SimulationError("need at least one BMO unit")
        done = set(done)
        finish: Dict[str, float] = {name: 0.0 for name in done}
        unit_free = [0.0] * units
        slots: List[Tuple[str, float, float]] = []
        pending = [n for n in self._order if n not in done]
        completed: Set[str] = set(done)
        while pending:
            # Among ops whose dependencies have finished, schedule the
            # one that can *start* earliest (ready time vs. unit
            # availability), breaking ties toward longer ops.
            candidates = []
            for name in pending:
                op = self.subops[name]
                if not all(dep in completed for dep in op.deps):
                    continue
                ready = max((finish[dep] for dep in op.deps),
                            default=0.0)
                if start_times and name in start_times:
                    ready = max(ready, start_times[name])
                unit = min(range(units), key=lambda u: unit_free[u])
                begin = max(ready, unit_free[unit])
                candidates.append((begin, -op.latency_ns, name, unit))
            if not candidates:
                raise SimulationError("scheduler wedged (cycle?)")
            begin, _neg, name, unit = min(candidates)
            op = self.subops[name]
            end = begin + op.latency_ns
            unit_free[unit] = end
            finish[name] = end
            slots.append((name, begin, end))
            completed.add(name)
            pending.remove(name)
        return Schedule(slots)


class Schedule:
    """A list of (sub-op, start, end) slots with summary helpers."""

    def __init__(self, slots: List[Tuple[str, float, float]]):
        self.slots = slots

    @property
    def makespan(self) -> float:
        return max((end for _n, _s, end in self.slots), default=0.0)

    @property
    def total_work(self) -> float:
        return sum(end - start for _n, start, end in self.slots)

    def start_of(self, name: str) -> float:
        for slot_name, start, _end in self.slots:
            if slot_name == name:
                return start
        raise KeyError(name)

    def end_of(self, name: str) -> float:
        for slot_name, _start, end in self.slots:
            if slot_name == name:
                return end
        raise KeyError(name)

    def as_rows(self) -> List[Tuple[str, float, float]]:
        return sorted(self.slots, key=lambda s: (s[1], s[0]))

    def render(self, width: int = 60) -> str:
        """ASCII timeline (used by the Fig. 3 example)."""
        if not self.slots:
            return "(empty schedule)"
        span = self.makespan or 1.0
        lines = []
        for name, start, end in self.as_rows():
            lead = int(width * start / span)
            body = max(1, int(width * (end - start) / span))
            lines.append(
                f"{name:>10} |{' ' * lead}{'#' * body}"
                f"  [{start:.0f}-{end:.0f} ns]")
        return "\n".join(lines)
