"""Composition of BMOs into one write-path pipeline.

``BmoPipeline`` concatenates the sub-operations of the enabled BMOs,
wires the inter-operation dependency edges that their integration
creates (paper Fig. 6), and owns the *commit* step — the single place
where shared mechanism state (counters, dedup tables, Merkle tree)
mutates, invoked by the memory controller when a write actually lands.

``build_pipeline`` constructs the paper's evaluated configuration
(dedup + encryption + integrity) or any subset/superset, from a
:class:`repro.common.config.SystemConfig`.

*When* the pipeline runs relative to a writeback is decided one layer
up, by the scheduling policy (:mod:`repro.bmo.policy`): serialized and
parallel run it inline, janus pre-executes pieces of it, coalesced
discounts shared integrity-node charges across a write batch, and
async-epoch replays buffered writes through it at epoch close.  Every
mode funnels through the same :meth:`BmoPipeline.commit`, so mechanism
state mutates identically regardless of scheduling — the basis of the
final-image equivalence oracle (``docs/scheduling-modes.md``).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.bmo.base import BackendOperation, BmoContext
from repro.bmo.compression import CompressionBmo
from repro.bmo.dedup import DedupBmo, DedupTable
from repro.bmo.ecc import EccBmo
from repro.bmo.encryption import EncryptionBmo
from repro.bmo.graph import DependencyGraph
from repro.bmo.integrity import IntegrityBmo
from repro.bmo.wear_leveling import WearLevelingBmo
from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.crypto.counter_mode import CounterModeEngine


@dataclass
class WriteAction:
    """What the memory controller must do after the BMOs commit."""

    #: False when deduplication cancelled the data write.
    write_data: bool
    #: Device line address for the payload (wear-leveling may remap).
    device_addr: int
    #: Bytes to store (ciphertext when encryption is on).
    payload: Optional[bytes]
    #: Number of metadata lines (counter/remap entry) to persist.
    metadata_lines: int


class BmoPipeline:
    """An ordered set of BMOs sharing one dependency graph."""

    def __init__(self, bmos: Sequence[BackendOperation]):
        self.bmos: List[BackendOperation] = list(bmos)
        self.by_name: Dict[str, BackendOperation] = {
            bmo.name: bmo for bmo in self.bmos}
        if len(self.by_name) != len(self.bmos):
            raise SimulationError("duplicate BMO in pipeline")
        subops = []
        for bmo in self.bmos:
            subops.extend(bmo.subops())
        self.graph = DependencyGraph(subops)
        self._serial_latency = sum(
            op.latency_ns for op in self.graph.subops.values())
        # Static name set, used by the per-commit completeness check.
        self._subop_names = frozenset(self.graph.subops)

    # -- context lifecycle ---------------------------------------------
    def make_context(self, addr: Optional[int] = None,
                     data: Optional[bytes] = None) -> BmoContext:
        return BmoContext(addr=addr, data=data)

    @property
    def bmo_order(self) -> List[str]:
        return [bmo.name for bmo in self.bmos]

    @property
    def all_subops(self) -> List[str]:
        return self.graph.topological_order

    def serial_latency(self) -> float:
        """Total latency when the BMOs execute as monolithic units."""
        return self._serial_latency

    def execute_all(self, ctx: BmoContext) -> BmoContext:
        """Run every sub-op functionally, in topological order.

        Timing-free helper used by the serialized executor (which
        charges the serial latency as one block) and by tests.
        """
        for name in self.graph.topological_order:
            if name not in ctx.completed:
                self.graph.subops[name].execute(ctx)
        return ctx

    # -- staleness ---------------------------------------------------------
    def stale_subops(self, ctx: BmoContext) -> Set[str]:
        """Completed sub-ops whose inputs changed since they ran, plus
        everything downstream of them (which consumed stale values)."""
        stale: Set[str] = set()
        for bmo in self.bmos:
            stale |= bmo.stale_subops(ctx)
        stale &= ctx.completed
        if not stale:
            return set()
        downstream = self.graph.reachable_from(stale)
        return (stale | downstream) & ctx.completed

    def invalidate(self, ctx: BmoContext, names: Set[str]) -> None:
        """Forget the results of ``names`` so they re-execute."""
        ctx.completed -= names

    # -- commit ------------------------------------------------------------
    def commit(self, ctx: BmoContext) -> WriteAction:
        """Apply all results to shared state; returns the write action.

        Must be called with a fully-executed, non-stale context; the
        executor guarantees this by looping on :meth:`stale_subops`.
        """
        if not self._subop_names.issubset(ctx.completed):
            missing = self._subop_names - ctx.completed
            raise SimulationError(
                f"commit with incomplete sub-ops: {sorted(missing)}")
        dedup = self.by_name.get("dedup")
        if dedup is not None:
            live_dup = dedup.table.lookup(
                ctx.require("fingerprint"), ctx.data) is not None
            if live_dup != bool(ctx.values.get("is_dup")):
                raise SimulationError(
                    "stale duplicate verdict reached commit; the "
                    "executor must refresh stale sub-ops first")
        for bmo in self.bmos:
            bmo.commit(ctx)

        is_dup = bool(ctx.values.get("is_dup"))
        if "encryption" in self.by_name:
            payload = ctx.values.get("ciphertext")
        else:
            payload = ctx.data
        device_addr = ctx.values.get("wl_addr", ctx.addr)
        metadata_lines = 1 if (
            "encryption" in self.by_name or dedup is not None) else 0
        return WriteAction(
            write_data=not is_dup,
            device_addr=device_addr,
            payload=None if is_dup else payload,
            metadata_lines=metadata_lines,
        )

    # -- persistence --------------------------------------------------------
    def unreconstructable_metadata(self) -> dict:
        snapshot = {}
        for bmo in self.bmos:
            snapshot[bmo.name] = bmo.unreconstructable_metadata()
        return snapshot

    def restore_metadata(self, snapshot: dict) -> None:
        for bmo in self.bmos:
            if bmo.name in snapshot:
                bmo.restore_metadata(snapshot[bmo.name])

    # -- introspection -------------------------------------------------------
    def classification(self) -> Dict[str, str]:
        return self.graph.classification()

    def describe(self) -> str:
        lines = [f"pipeline: {' -> '.join(self.bmo_order)}"]
        labels = self.classification()
        for name in self.graph.topological_order:
            op = self.graph.subops[name]
            deps = ",".join(op.deps) or "-"
            lines.append(
                f"  {name:>4} [{op.bmo:>12}] {op.latency_ns:7.1f} ns  "
                f"deps={deps:<12} external={labels[name]}")
        lines.append(f"  serial latency: {self.serial_latency():.1f} ns")
        return "\n".join(lines)


def build_pipeline(config: SystemConfig,
                   dedup_table: DedupTable = None,
                   nvm_copy_line=None) -> BmoPipeline:
    """Construct the pipeline described by ``config.bmos``.

    The returned pipeline shares one encryption engine across BMOs
    and wires the integration edges of paper Fig. 6.
    """
    enabled = set(config.bmos)
    engine = CounterModeEngine()
    bmos: List[BackendOperation] = []
    # Pipeline order mirrors the paper: dedup decides first, then
    # encryption, then integrity protects the metadata.  Compression /
    # wear-leveling / ECC slot around them when enabled.
    if "compression" in enabled:
        bmos.append(CompressionBmo(config.bmo_latencies))
    if "wear_leveling" in enabled:
        bmos.append(WearLevelingBmo(
            config.bmo_latencies,
            region_lines=min(1 << 16,
                             config.memory.capacity_bytes // 64)))
    if "dedup" in enabled:
        table = dedup_table if dedup_table is not None else DedupTable(
            shadow_base=config.memory.capacity_bytes // 2)
        bmos.append(DedupBmo(config.bmo_latencies, config.dedup,
                             table=table, nvm_copy_line=nvm_copy_line,
                             with_encryption="encryption" in enabled))
    if "encryption" in enabled:
        bmos.append(EncryptionBmo(config.bmo_latencies, engine=engine,
                                  with_dedup="dedup" in enabled))
    if "integrity" in enabled:
        bmos.append(IntegrityBmo(
            config.bmo_latencies, config.integrity,
            with_encryption="encryption" in enabled,
            with_dedup="dedup" in enabled))
    if "ecc" in enabled:
        bmos.append(EccBmo(config.bmo_latencies,
                           with_encryption="encryption" in enabled))
    if "oram" in enabled:
        from repro.bmo.oram import OramBmo
        bmos.append(OramBmo(config.bmo_latencies))
    if not bmos:
        raise SimulationError("pipeline needs at least one BMO")
    return BmoPipeline(bmos)
