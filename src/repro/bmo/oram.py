"""ORAM as a BMO (Table 1: ~1000 ns per access).

Sub-operations:

* ``O1`` — position-map lookup + fresh-leaf remap (address-dependent:
  the block id derives from the line address);
* ``O2`` — read the old root-to-leaf path into the stash (depends on
  O1; still address-dependent);
* ``O3`` — place the new data in the stash and evict the path back
  (needs the data).

O1/O2 pre-execute with the address alone — most of the ~1000 ns —
leaving only the eviction on the critical path, which is exactly the
kind of win the paper's framework generalises to (ORAM appears in
Table 1 but not in the evaluated pipeline; this module plus the
``bmos=("oram", ...)`` configuration extends the evaluation to it).
"""

from typing import Tuple

from repro.bmo.base import (
    ADDR,
    BackendOperation,
    BmoContext,
    DATA,
    SubOp,
)
from repro.common.config import BmoLatencies
from repro.crypto.path_oram import PathOram


class OramBmo(BackendOperation):
    """Path-ORAM location scrambling for NVM writes."""

    name = "oram"

    #: Split of the ~1000 ns Table 1 latency across sub-operations.
    O1_NS = 100.0
    O2_NS = 450.0
    O3_NS = 450.0

    def __init__(self, latencies: BmoLatencies = None,
                 oram: PathOram = None, line_bytes: int = 64):
        super().__init__()
        self.oram = oram if oram is not None else PathOram()
        self.line_bytes = line_bytes

    def _block_id(self, addr: int) -> int:
        return addr // self.line_bytes

    # -- functional sub-op bodies -------------------------------------
    def _o1(self, ctx: BmoContext) -> None:
        block = self._block_id(ctx.addr)
        ctx.values["oram_block"] = block
        ctx.values["oram_old_leaf"] = self.oram.position_of(block)

    def _o2(self, ctx: BmoContext) -> None:
        # The path read is modeled functionally at commit (the access
        # protocol is atomic there); pre-execution's job is to have
        # charged its latency early.
        ctx.values["oram_path_read"] = True

    def _o3(self, ctx: BmoContext) -> None:
        ctx.values["oram_ready"] = True

    def subops(self) -> Tuple[SubOp, ...]:
        return (
            SubOp("O1", self.name, self.O1_NS,
                  external=frozenset({ADDR}), run=self._o1),
            SubOp("O2", self.name, self.O2_NS,
                  deps=("O1",), run=self._o2),
            SubOp("O3", self.name, self.O3_NS,
                  deps=("O2",), external=frozenset({DATA}),
                  run=self._o3),
        )

    def commit(self, ctx: BmoContext) -> None:
        payload = ctx.values.get("ciphertext") or ctx.data
        self.oram.access(ctx.values["oram_block"], payload)

    def stale_subops(self, ctx: BmoContext) -> set:
        """Another access to the same block remapped it: the recorded
        leaf (and the path read against it) is stale."""
        if "oram_block" not in ctx.values:
            return set()
        current = self.oram.position_of(ctx.values["oram_block"])
        if current != ctx.values.get("oram_old_leaf"):
            return {"O1"}
        return set()
