"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``figures``
    List the reproducible tables/figures.
``figure <name> [--scale S]``
    Regenerate one table/figure and print it (e.g. ``figure fig9``).
``run <workload> [--mode M] [--variant V] [--cores N] [--txns T]
     [--trace T.json] [--stats S.json]``
    Simulate one design point and print timing + stats.  ``--trace``
    writes a Chrome trace-event (Perfetto) timeline of the run;
    ``--stats`` writes a full metrics snapshot.
``stats <a.json> [<b.json>]``
    Pretty-print one stats snapshot, or diff two (``b - a``).
``compare <workload> [...]``
    Run all four design points for a workload and print speedups.
``plan <workload> [--variant V]``
    Show the instrumentation plan (and the §6 window estimate).
``misuse <workload>``
    Run the workload under Janus and print the misuse report.
``bench [--quick] [--compare PATH|auto|none] [--threshold F]``
    Wall-clock perf benchmark of the tier-1 workloads plus the IRB
    microbenchmark; writes ``benchmarks/perf/BENCH_<date>.json`` and
    fails (exit 1) on a throughput regression versus the baseline.
``scrub <workload> [--crash-at T] [--faults K,K,...] [--seed S]``
    Run a workload, pull the plug, recover, and print the recovery
    summary plus the :class:`ScrubReport` — optionally with seeded
    faults injected (see ``repro.faults.FAULT_KINDS``).
``crashtest [--quick] [--points N] [--workloads W,W] [--modes M,M]``
    The crash-point campaign: sweep seeded crash points per workload
    and mode, recover + scrub each, run the fault-class scenarios,
    write ``results/CRASHTEST_<date>.json``, and fail (exit 1) on any
    invariant violation (digest mismatch, commit gap, silent fault).
``soak [--quick] [--cycles N] [--workloads W,W] [--modes M,M]``
    The multi-cycle soak campaign: run -> crash -> recover ->
    invariant-check -> resume on the recovered image, N cycles per
    workload and mode, with per-cycle fault plans and media wear
    accumulating across cycles.  Writes ``results/SOAK_<date>.json``
    (byte-identical at any ``--jobs`` and either scheduler) and
    fails (exit 1) on any violation: silent fault, broken recovery
    idempotence, digest mismatch, or lost committed work.
``fuzz [--cases N] [--seed S] [--quick] [--replay PATH]``
    Seeded stateful fuzzing (:mod:`repro.validate.fuzz`): random op
    sequences over the Janus API, IRB lockstep traces, and workload
    kernels, all run under the invariant checkers and differential
    oracles.  Failures are delta-debugged to minimal repros in
    ``results/FUZZ_<date>/``; ``--replay`` re-runs one repro file.
``profile <workload> [--mode M] [--quick] [--out P.json]
        [--folded P.folded] [--top N]``
    Deterministic simulation profiler (:mod:`repro.obs.profile`):
    runs one design point with dispatch + span instrumentation and
    prints a ranked hotspot table.  ``--out`` writes the byte-stable
    report JSON; ``--folded`` writes speedscope-loadable folded
    stacks.
``chart <series.jsonl> [--metric M]``
    Plot one metric from a ``--timeseries`` JSONL file as an ASCII
    chart; with no ``--metric``, list the sampled metrics.

``run`` and ``profile`` accept ``--timeseries N`` (snapshot all
metrics every N sim-ns into ``--timeseries-out``, byte-deterministic
at any job count) and — like ``scrub``, ``crashtest``, and ``fuzz``
— ``--log PATH`` (or ``$REPRO_LOG``) for a structured JSONL run log
(:mod:`repro.obs.log`).

The sweep commands (``figure``, ``crashtest``, ``bench``, ``fuzz``)
accept
``--jobs N`` to shard their independent simulation points across
worker processes (:mod:`repro.harness.parallel`); output is
byte-identical at any job count.  ``$REPRO_JOBS`` sets the default.
"""

import argparse
import json
import os
import sys

from repro.common.config import SystemConfig
from repro.harness import experiments
from repro.harness.report import Table
from repro.harness.runner import run_point, speedup_over
from repro.workloads import WORKLOADS, WorkloadParams

def _static(fn):
    """Adapt a no-sweep figure driver to the (scale, jobs, progress)
    calling convention — it has no point set to shard."""
    return lambda scale, jobs, progress: fn()


FIGURES = {
    "table1": _static(experiments.table1_bmo_catalog),
    "fig3": _static(experiments.fig3_timeline),
    "fig6": _static(experiments.fig6_dependency_graph),
    "fig9": lambda scale, jobs, progress: experiments.fig9_multicore(
        scale=scale, jobs=jobs, progress=progress),
    "fig10": lambda scale, jobs, progress:
        experiments.fig10_ideal_comparison(
            scale=scale, jobs=jobs, progress=progress),
    "fig11": lambda scale, jobs, progress: experiments.fig11_compiler(
        scale=scale, jobs=jobs, progress=progress),
    "fig12": lambda scale, jobs, progress: experiments.fig12_dedup(
        scale=scale, jobs=jobs, progress=progress),
    "fig13": lambda scale, jobs, progress:
        experiments.fig13_transaction_size(
            scale=scale, jobs=jobs, progress=progress),
    "fig14": lambda scale, jobs, progress:
        experiments.fig14_resources(
            scale=scale, jobs=jobs, progress=progress),
    "modes": lambda scale, jobs, progress:
        experiments.modes_comparison(
            scale=scale, jobs=jobs, progress=progress),
    "shards": lambda scale, jobs, progress:
        experiments.shards_sweep(
            scale=scale, jobs=jobs, progress=progress),
    "overhead": _static(experiments.overhead_analysis),
    "composition": lambda scale, jobs, progress:
        experiments.bmo_composition(
            scale=scale, jobs=jobs, progress=progress),
}


def _add_jobs_arg(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for independent simulation points "
             "(default: $REPRO_JOBS, then the CPU count; 1 = inline, "
             "no processes).  Output is byte-identical at any job "
             "count.")


def _add_log_arg(parser) -> None:
    parser.add_argument(
        "--log", metavar="PATH", default=None,
        help="write a structured JSONL run log (repro.obs.log); "
             "$REPRO_LOG sets the default")


def _add_shards_arg(parser) -> None:
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="memory-controller shards (power of two; docs/"
             "sharding.md).  1 is the classic single-controller "
             "machine, bit for bit")


def _add_scheduler_arg(parser) -> None:
    parser.add_argument(
        "--scheduler", default=None, choices=("bucket", "heap"),
        help="simulation dispatch structure: the bucketed calendar "
             "queue (default) or the reference per-event heap — "
             "behaviourally identical, the heap is the slow oracle "
             "(default: $REPRO_SCHEDULER, then bucket)")


def _add_timeseries_args(parser) -> None:
    parser.add_argument(
        "--timeseries", type=float, default=None, metavar="N",
        help="sample all metrics every N sim-ns into a "
             "byte-deterministic JSONL series (repro.obs.timeseries)")
    parser.add_argument(
        "--timeseries-out", metavar="PATH", default="timeseries.jsonl",
        help="where --timeseries writes its JSONL "
             "(default timeseries.jsonl; plot with `repro chart`)")


def _progress_for(args, label):
    """A live progress callback when the sweep will actually fan out;
    ``None`` otherwise (inline runs stay silent on stderr)."""
    from repro.harness.parallel import progress_line, resolve_jobs
    if resolve_jobs(args.jobs) > 1:
        return progress_line(label)
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Janus (ISCA'19) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures")

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", type=float, default=0.5)
    figure.add_argument("--chart", action="store_true",
                        help="also render as bars (fig9/fig11)")
    figure.add_argument("--out", default=None, metavar="PATH",
                        help="also write the rendered figure to PATH "
                             "(parent directories are created; an "
                             "existing file is only overwritten when "
                             "it is a previous render of the same "
                             "figure)")
    figure.add_argument("--force", action="store_true",
                        help="overwrite --out even when the existing "
                             "file is not a previous render")
    figure.add_argument("--shards", default=None, metavar="N,N",
                        help="shard counts for the 'shards' figure "
                             "(comma-separated, default 1,2,4); "
                             "rejected for other figures")
    _add_jobs_arg(figure)

    def add_workload_args(p, modes=True):
        p.add_argument("workload", choices=sorted(WORKLOADS))
        p.add_argument("--txns", type=int, default=24)
        p.add_argument("--items", type=int, default=32)
        p.add_argument("--value-size", type=int, default=64)
        if modes:
            p.add_argument("--mode", default="janus",
                           choices=SystemConfig.MODES,
                           help="write-path scheduling mode; the "
                                "per-mode durability contract is "
                                "docs/scheduling-modes.md")
            p.add_argument("--variant", default=None,
                           choices=("baseline", "manual", "auto"))
            p.add_argument("--cores", type=int, default=1)
            p.add_argument("--staleness-epochs", type=int,
                           default=None, metavar="N",
                           help="async-epoch only: max closed epochs "
                                "awaiting flush before writebacks "
                                "stall (default 2)")
            p.add_argument("--epoch-writes", type=int, default=None,
                           metavar="N",
                           help="async-epoch only: buffered writes "
                                "per epoch (default 32)")

    run = sub.add_parser("run", help="simulate one design point")
    add_workload_args(run)
    _add_shards_arg(run)
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Perfetto-loadable Chrome trace-event"
                          " JSON timeline of the run")
    run.add_argument("--stats", metavar="PATH", default=None,
                     help="write the full metrics snapshot as JSON")
    run.add_argument("--digest", metavar="PATH", default=None,
                     help="after the run: crash, recover, and write "
                          "the recovered-structure digest as canonical "
                          "JSON (repro-digest-v1) — topology-blind, so "
                          "equivalent runs at any --shards width "
                          "produce identical bytes (docs/sharding.md)")
    run.add_argument("--check", action="store_true",
                     help="run the cross-layer invariant checkers "
                          "(repro.validate) after every BMO-pipeline "
                          "commit; exit 1 on any violation")
    run.add_argument("--prom", metavar="PATH", default=None,
                     help="write the final metrics snapshot in "
                          "Prometheus text exposition format")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="accepted for interface uniformity with the "
                          "sweep commands; a single design point "
                          "always runs inline")
    _add_scheduler_arg(run)
    _add_timeseries_args(run)
    _add_log_arg(run)

    profile = sub.add_parser(
        "profile", help="deterministic simulation profiler")
    add_workload_args(profile)
    profile.add_argument("--quick", action="store_true",
                         help="CI-sized run (caps --txns at 8)")
    profile.add_argument("--out", metavar="PATH", default=None,
                         help="write the byte-stable profile report "
                              "JSON (repro-profile-v1)")
    profile.add_argument("--folded", metavar="PATH", default=None,
                         help="write folded stacks (speedscope / "
                              "flamegraph.pl format)")
    profile.add_argument("--top", type=int, default=12, metavar="N",
                         help="rows per hotspot table (default 12)")
    profile.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="accepted for interface uniformity; a "
                              "profiled point always runs inline")
    _add_timeseries_args(profile)
    _add_log_arg(profile)

    chart = sub.add_parser(
        "chart", help="ASCII-plot a --timeseries JSONL metric")
    chart.add_argument("series", help="JSONL file from --timeseries")
    chart.add_argument("--metric", default=None, metavar="M",
                       help="metric to plot (omit to list)")
    chart.add_argument("--width", type=int, default=60)
    chart.add_argument("--height", type=int, default=12)

    stats = sub.add_parser(
        "stats", help="pretty-print or diff stats snapshots")
    stats.add_argument("snapshot", help="stats JSON from `run --stats`")
    stats.add_argument("other", nargs="?", default=None,
                       help="second snapshot: print the diff "
                            "(other - snapshot)")

    compare = sub.add_parser("compare",
                             help="all four design points")
    add_workload_args(compare, modes=False)

    plan = sub.add_parser("plan", help="show instrumentation plan")
    plan.add_argument("workload", choices=sorted(WORKLOADS))
    plan.add_argument("--variant", default="auto",
                      choices=("manual", "auto"))

    misuse = sub.add_parser("misuse", help="misuse report for a run")
    add_workload_args(misuse, modes=False)
    misuse.add_argument("--variant", default="manual",
                        choices=("manual", "auto"))

    bench = sub.add_parser(
        "bench", help="wall-clock perf benchmark + regression gate")
    bench.add_argument("--quick", action="store_true",
                       help="smaller runs (CI-sized)")
    bench.add_argument("--dir", default=None, metavar="DIR",
                       help="trajectory directory "
                            "(default benchmarks/perf)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="report path (default "
                            "DIR/BENCH_<date>.json)")
    bench.add_argument("--compare", default="auto", metavar="PATH",
                       help="baseline report to gate against: a path, "
                            "'auto' (latest BENCH_*.json in DIR), or "
                            "'none'")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="fail when events/sec falls by more than "
                            "this fraction (default 0.25)")
    bench.add_argument("--min-irb-speedup", type=float, default=2.0,
                       help="fail when the indexed IRB microbench "
                            "speedup over the linear baseline drops "
                            "below this (default 2.0)")
    bench.add_argument("--max-obs-overhead", type=float, default=0.02,
                       help="fail when the obs-off dispatch loop is "
                            "slower than the pre-profiler loop by "
                            "more than this fraction (default 0.02)")
    bench.add_argument("--no-write", action="store_true",
                       help="do not write the report JSON")
    bench.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the per-workload "
                            "benches (default 1: concurrent benches "
                            "contend for cores, so the regression "
                            "gate and committed baselines are always "
                            "jobs=1)")
    _add_scheduler_arg(bench)

    scrub = sub.add_parser(
        "scrub", help="crash, recover, and scrub one workload")
    add_workload_args(scrub)
    scrub.add_argument("--crash-at", type=float, default=None,
                       metavar="NS",
                       help="power-failure time in ns (default: 60%% "
                            "of the workload's full run)")
    scrub.add_argument("--faults", default=None, metavar="K,K",
                       help="comma-separated fault kinds to inject "
                            "(seeded plan; see repro.faults)")
    scrub.add_argument("--seed", type=int, default=7)
    _add_log_arg(scrub)

    crashtest = sub.add_parser(
        "crashtest", help="crash-point campaign + fault scenarios")
    crashtest.add_argument("--quick", action="store_true",
                           help="CI-sized: 2 workloads, 5 points")
    crashtest.add_argument("--points", type=int, default=None,
                           help="crash points per workload x mode "
                                "(default 20, or 5 with --quick)")
    crashtest.add_argument("--workloads", default=None, metavar="W,W",
                           help="comma-separated subset (default all)")
    crashtest.add_argument("--modes", default=None, metavar="M,M",
                           help="comma-separated modes to sweep "
                                "(default serialized,janus; any of "
                                "serialized,parallel,janus,ideal,"
                                "coalesced,async-epoch)")
    crashtest.add_argument("--seed", type=int, default=7)
    crashtest.add_argument("--no-scenarios", action="store_true",
                           help="skip the fault-class scenarios")
    crashtest.add_argument("--dir", default=None, metavar="DIR",
                           help="report directory (default results)")
    crashtest.add_argument("--out", default=None, metavar="PATH",
                           help="report path (default "
                                "DIR/CRASHTEST_<date>.json)")
    crashtest.add_argument("--no-write", action="store_true",
                           help="do not write the report JSON")
    _add_shards_arg(crashtest)
    _add_jobs_arg(crashtest)
    _add_log_arg(crashtest)

    soak = sub.add_parser(
        "soak", help="multi-cycle crash/recover/resume soak campaign")
    soak.add_argument("--quick", action="store_true",
                      help="CI-sized: 2 workloads, 4 cycles")
    soak.add_argument("--cycles", type=int, default=None,
                      help="lifecycle cycles per workload x mode "
                           "(default 20, or 4 with --quick)")
    soak.add_argument("--workloads", default=None, metavar="W,W",
                      help="comma-separated subset (default all)")
    soak.add_argument("--modes", default=None, metavar="M,M",
                      help="comma-separated modes to sweep "
                           "(default serialized,janus; any of "
                           "serialized,parallel,janus,ideal,"
                           "coalesced,async-epoch)")
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument("--no-oracle", action="store_true",
                      help="skip the per-crash-point idempotence "
                           "oracle (faster)")
    soak.add_argument("--dir", default=None, metavar="DIR",
                      help="report directory (default results)")
    soak.add_argument("--out", default=None, metavar="PATH",
                      help="report path (default "
                           "DIR/SOAK_<date>.json)")
    soak.add_argument("--no-write", action="store_true",
                      help="do not write the report JSON")
    _add_shards_arg(soak)
    _add_jobs_arg(soak)
    _add_log_arg(soak)

    fuzz = sub.add_parser(
        "fuzz", help="seeded stateful fuzz under checkers + oracles")
    fuzz.add_argument("--cases", type=int, default=None, metavar="N",
                      help="cases to generate (default 60, or 12 "
                           "with --quick)")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--max-ops", type=int, default=16, metavar="N",
                      help="max ops per generated api case")
    fuzz.add_argument("--quick", action="store_true",
                      help="CI-sized smoke campaign")
    fuzz.add_argument("--workloads", default=None, metavar="W,W",
                      help="workload kernels to mix in (default "
                           "array_swap,queue,hash_table; 'none' "
                           "disables)")
    fuzz.add_argument("--dir", default=None, metavar="DIR",
                      help="repro directory (default "
                           "results/FUZZ_<date>)")
    fuzz.add_argument("--no-write", action="store_true",
                      help="do not write repro/report files")
    fuzz.add_argument("--replay", default=None, metavar="PATH",
                      help="re-run a minimized repro file instead of "
                           "fuzzing")
    _add_shards_arg(fuzz)
    _add_jobs_arg(fuzz)
    _add_log_arg(fuzz)
    return parser


def _params(args) -> WorkloadParams:
    return WorkloadParams(n_items=args.items,
                          value_size=args.value_size,
                          n_transactions=args.txns)


def _scheduling_overrides(args) -> dict:
    """Config overrides for the relaxed-mode dials, when given."""
    if getattr(args, "staleness_epochs", None) is None \
            and getattr(args, "epoch_writes", None) is None:
        return {}
    from repro.common.config import SchedulingConfig
    sched = SchedulingConfig()
    if args.staleness_epochs is not None:
        sched.staleness_epochs = args.staleness_epochs
    if args.epoch_writes is not None:
        sched.epoch_writes = args.epoch_writes
    return {"scheduling": sched}


def cmd_figures(_args) -> int:
    for name in sorted(FIGURES):
        print(name)
    return 0


def cmd_figure(args) -> int:
    if args.shards is not None and args.name != "shards":
        print("--shards only applies to `repro figure shards`",
              file=sys.stderr)
        return 2
    if args.name == "shards" and args.shards is not None:
        counts = tuple(int(n) for n in args.shards.split(",")
                       if n.strip())
        result = experiments.shards_sweep(
            scale=args.scale, shards=counts, jobs=args.jobs,
            progress=_progress_for(args, "figure shards"))
    else:
        result = FIGURES[args.name](
            args.scale, args.jobs,
            _progress_for(args, f"figure {args.name}"))
    rendered = [result.rendered]
    print(result.rendered)
    if getattr(args, "chart", False):
        from repro.harness.plot import fig9_chart, fig11_chart
        chart = None
        if args.name == "fig9":
            chart = fig9_chart(result.data)
        elif args.name == "fig11":
            chart = fig11_chart(result.data)
        if chart is not None:
            print()
            print(chart)
            rendered.append("")
            rendered.append(chart)
    if args.out:
        from repro.harness.report import (
            ReportOverwriteError,
            write_report_text,
        )
        try:
            write_report_text("\n".join(rendered), args.out,
                              force=args.force)
        except ReportOverwriteError as error:
            print(f"refusing: {error}", file=sys.stderr)
            return 2
        print(f"figure -> {args.out}")
    return 0


def cmd_run(args) -> int:
    tracer = None
    if args.trace or args.timeseries:
        from repro.obs import Tracer
        tracer = Tracer(enabled=True)
    sampler = None
    if args.timeseries:
        from repro.obs import TimeSeriesSampler
        sampler = TimeSeriesSampler(
            args.timeseries,
            meta={"workload": args.workload, "mode": args.mode,
                  "cores": args.cores, "txns": args.txns})
    try:
        result = run_point(args.workload, mode=args.mode,
                           variant=args.variant, cores=args.cores,
                           params=_params(args), tracer=tracer,
                           sampler=sampler,
                           check_invariants=args.check,
                           scheduler=args.scheduler or "",
                           shards=args.shards,
                           with_digest=args.digest is not None,
                           **_scheduling_overrides(args))
    except Exception as error:
        from repro.validate import InvariantViolation
        if not isinstance(error, InvariantViolation):
            raise
        print(f"INVARIANT VIOLATION [{error.layer}:{error.invariant}]"
              f" {error.detail}", file=sys.stderr)
        print(json.dumps(error.as_dict(), indent=2, sort_keys=True),
              file=sys.stderr)
        return 1
    print(f"{result.workload} mode={result.mode} "
          f"variant={result.variant} cores={result.cores}")
    if args.check:
        checks = result.stats.get("validate.checks", 0.0)
        print(f"  invariants: {checks:,.0f} checks, 0 violations")
    print(f"  elapsed {result.elapsed_ns:,.0f} ns for "
          f"{result.transactions} transactions "
          f"({result.ns_per_transaction:,.0f} ns/txn)")
    for key in sorted(result.stats):
        print(f"  {key:40s} {result.stats[key]:.2f}")
    if args.trace:
        from repro.harness.report import ensure_parent
        from repro.obs import export_chrome_trace
        export_chrome_trace(tracer, path=ensure_parent(args.trace))
        print(f"  trace: {len(tracer)} events -> {args.trace} "
              f"(open in ui.perfetto.dev)")
    if args.stats:
        from repro.harness.report import ensure_parent
        with open(ensure_parent(args.stats), "w") as handle:
            json.dump(result.snapshot, handle, indent=2, sort_keys=True)
        print(f"  stats snapshot -> {args.stats}")
    if args.digest:
        from repro.harness.report import ensure_parent
        payload = {
            "schema": "repro-digest-v1",
            "workload": result.workload,
            "mode": result.mode,
            "variant": result.variant,
            "cores": result.cores,
            "transactions": result.transactions,
            "elapsed_ns": result.elapsed_ns,
            "digest": result.digest,
        }
        with open(ensure_parent(args.digest), "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"  recovered-structure digest -> {args.digest}")
    if sampler is not None:
        sampler.write_jsonl(args.timeseries_out)
        print(f"  timeseries: {len(sampler.samples)} samples every "
              f"{args.timeseries:,.0f} sim-ns -> {args.timeseries_out} "
              f"(plot with `repro chart`)")
    if args.prom:
        from repro.harness.report import ensure_parent
        from repro.obs import prometheus_exposition
        with open(ensure_parent(args.prom), "w") as handle:
            handle.write(prometheus_exposition(result.snapshot))
        print(f"  prometheus exposition -> {args.prom}")
    return 0


def cmd_profile(args) -> int:
    from repro.obs import (
        SimProfiler,
        TimeSeriesSampler,
        Tracer,
        profile_report,
        render_hotspots,
    )
    from repro.obs.profile import write_report

    if args.quick:
        args.txns = min(args.txns, 8)
    tracer = Tracer(enabled=True)
    profiler = SimProfiler()
    sampler = None
    if args.timeseries:
        sampler = TimeSeriesSampler(
            args.timeseries,
            meta={"workload": args.workload, "mode": args.mode,
                  "cores": args.cores, "txns": args.txns})
    result = run_point(args.workload, mode=args.mode,
                       variant=args.variant, cores=args.cores,
                       params=_params(args), tracer=tracer,
                       profiler=profiler, sampler=sampler)
    report = profile_report(profiler, tracer, meta={
        "workload": result.workload, "mode": result.mode,
        "variant": result.variant, "cores": result.cores,
        "txns": args.txns, "elapsed_ns": result.elapsed_ns,
        "transactions": result.transactions})
    print(render_hotspots(report, profiler, top=args.top))
    if args.out:
        write_report(report, args.out)
        print(f"profile report -> {args.out}")
    if args.folded:
        from repro.harness.report import ensure_parent
        with open(ensure_parent(args.folded), "w") as handle:
            handle.write(report["folded"])
        print(f"folded stacks -> {args.folded} "
              f"(load at speedscope.app)")
    if sampler is not None:
        sampler.write_jsonl(args.timeseries_out)
        print(f"timeseries -> {args.timeseries_out}")
    return 0


def cmd_chart(args) -> int:
    from repro.obs import timeseries as ts

    header, samples = ts.load_jsonl(args.series)
    if args.metric is None:
        meta = "  ".join(f"{k}={header[k]}" for k in sorted(header)
                         if k != "schema")
        print(f"{args.series}: {meta}")
        names = sorted({name for sample in samples
                        for name in sample["metrics"]})
        for name in names:
            print(f"  {name}")
        print("pick one with --metric")
        return 0
    print(ts.render_series(samples, args.metric,
                           width=args.width, height=args.height))
    return 0


def _render_snapshot(snap: dict) -> str:
    lines = []
    meta = snap.get("meta", {})
    if meta:
        lines.append("  ".join(f"{k}={meta[k]}" for k in sorted(meta)))
    for name in sorted(snap.get("counters", {})):
        lines.append(f"  {name:44s} {snap['counters'][name]}")
    for name in sorted(snap.get("histograms", {})):
        h = snap["histograms"][name]
        parts = [f"count={h.get('count', 0)}",
                 f"mean={h.get('mean', 0.0):.1f}"]
        if "p95" in h:
            parts.append(f"p95={h['p95']:.1f}")
        lines.append(f"  {name:44s} " + " ".join(parts))
    return "\n".join(lines)


def cmd_stats(args) -> int:
    from repro.obs import MetricsRegistry

    with open(args.snapshot) as handle:
        first = json.load(handle)
    if args.other is None:
        print(_render_snapshot(first))
        return 0
    with open(args.other) as handle:
        second = json.load(handle)
    delta = MetricsRegistry.delta(first, second)
    print(f"delta: {args.other} - {args.snapshot}")
    for name in sorted(delta["counters"]):
        diff = delta["counters"][name]
        if diff:
            print(f"  {name:44s} {diff:+d}")
    for name in sorted(delta["histograms"]):
        h = delta["histograms"][name]
        if h["count"]:
            print(f"  {name:44s} count={h['count']:+d} "
                  f"mean-of-new={h['mean']:.1f}")
    return 0


def cmd_compare(args) -> int:
    params = _params(args)
    serialized = run_point(args.workload, mode="serialized",
                           params=params)
    table = Table(f"{args.workload}: design-point comparison",
                  ["design", "ns/txn", "speedup vs serialized"])
    table.add_row("serialized", serialized.ns_per_transaction, 1.0)
    for mode, variant in (("parallel", None), ("coalesced", None),
                          ("async-epoch", None), ("janus", "manual"),
                          ("janus", "auto"), ("ideal", None)):
        result = run_point(args.workload, mode=mode, variant=variant,
                           params=params)
        label = mode if variant in (None, "manual") else f"{mode}-auto"
        if mode == "janus" and variant == "manual":
            label = "janus-manual"
        table.add_row(label, result.ns_per_transaction,
                      speedup_over(serialized, result))
    print(table.render())
    return 0


def cmd_plan(args) -> int:
    from repro.bmo import build_pipeline
    from repro.common.config import default_config
    from repro.compiler.window import render_report
    from repro.workloads.registry import plan_for

    cls = WORKLOADS[args.workload]
    plan = plan_for(cls, args.variant)
    print(plan.describe())
    print()
    graph = build_pipeline(default_config()).graph
    print(render_report(cls.template(), plan, graph))
    return 0


def cmd_misuse(args) -> int:
    from repro.common.config import default_config
    from repro.core import NvmSystem
    from repro.janus.misuse import diagnose
    from repro.workloads import make_workload

    system = NvmSystem(default_config(mode="janus"))
    workload = make_workload(args.workload, system, system.cores[0],
                             _params(args), variant=args.variant)
    system.run_programs([workload.run()])
    print(diagnose(system).render())
    return 0


def cmd_bench(args) -> int:
    from repro.harness import bench

    if args.scheduler:
        # Through the environment so --jobs worker processes (which
        # construct their own Simulators) inherit the choice too.
        os.environ["REPRO_SCHEDULER"] = args.scheduler

    directory = args.dir if args.dir is not None else bench.DEFAULT_DIR
    out = args.out if args.out is not None \
        else bench.bench_path(directory)
    report = bench.run_bench(
        quick=args.quick, jobs=args.jobs,
        progress=_progress_for(args, "bench"))

    baseline = None
    if args.compare == "auto":
        # Exclude ``out`` only when this run will overwrite it: with
        # --no-write a committed baseline that happens to share
        # today's date must still be eligible.
        baseline_path = bench.find_baseline(
            directory, exclude=None if args.no_write else out)
    elif args.compare == "none":
        baseline_path = None
    else:
        baseline_path = args.compare
    if baseline_path is not None:
        baseline = bench.load_report(baseline_path)

    print(bench.render(report, baseline=baseline))
    if not args.no_write:
        bench.write_report(report, out)
        print(f"report -> {out}")

    failures = []
    speedup = report["irb_micro"]["speedup"]
    if speedup < args.min_irb_speedup:
        failures.append(
            f"irb_micro: indexed speedup {speedup:.2f}x below the "
            f"{args.min_irb_speedup:.1f}x floor")
    # The gate reasons about *added* cost, so negative raw readings
    # (the obs-capable loop beating the baseline on timer noise) clamp
    # to zero here; the raw signed value stays in the JSON report for
    # trend analysis.
    overhead = max(0.0, report["obs_overhead"]["overhead"])
    if overhead > args.max_obs_overhead:
        # One re-measure before failing: the micro is short, and the
        # gate should catch a real added per-event cost, not a
        # scheduler stall during the first sample.
        overhead = min(overhead,
                       max(0.0, bench.bench_obs_overhead()["overhead"]))
    if overhead > args.max_obs_overhead:
        failures.append(
            f"obs_overhead: disabled-path dispatch overhead "
            f"{overhead:.2%} above the {args.max_obs_overhead:.0%} "
            f"gate")
    if baseline is not None:
        failures.extend(
            bench.compare(baseline, report, threshold=args.threshold))
        if not failures:
            print(f"gate: ok vs {baseline_path} "
                  f"(threshold {args.threshold:.0%})")
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_scrub(args) -> int:
    from repro.common.config import default_config
    from repro.common.errors import ReproError
    from repro.consistency import recover, scrub as run_scrub
    from repro.core import NvmSystem
    from repro.faults import (
        DegradedModeManager,
        FaultInjector,
        FaultPlan,
    )
    from repro.workloads import make_workload

    injector = None
    if args.faults:
        kinds = tuple(k.strip() for k in args.faults.split(",")
                      if k.strip())
        injector = FaultInjector(FaultPlan.seeded(args.seed, kinds))

    params = _params(args)
    variant = args.variant or \
        ("manual" if args.mode == "janus" else "baseline")

    crash_at = args.crash_at
    if crash_at is None:
        # Calibrate: a fault-free twin run fixes the time horizon.
        calib = NvmSystem(default_config(
            mode=args.mode, seed=args.seed,
            **_scheduling_overrides(args)))
        twin = make_workload(args.workload, calib, calib.cores[0],
                             params, variant=variant)
        horizon = calib.run_programs([twin.run()])
        crash_at = max(1.0, 0.6 * horizon)

    system = NvmSystem(default_config(mode=args.mode, seed=args.seed,
                                      **_scheduling_overrides(args)),
                       injector=injector)
    workload = make_workload(args.workload, system, system.cores[0],
                             params, variant=variant)
    system.sim.process(workload.run(), name="stream")
    system.sim.run(until=crash_at)
    snapshot = system.crash()
    print(f"{args.workload} mode={args.mode}: power failure at "
          f"{crash_at:,.0f} ns")
    if injector is not None:
        for record in injector.injected:
            print(f"  injected: {record}")
    try:
        state = recover(snapshot,
                        [(workload.log.base, workload.log.capacity)],
                        verify_macs=True)
        print(f"  recovery: {len(state.committed_txns)} committed, "
              f"{len(state.rolled_back)} rolled back, "
              f"{len(state.media_corrected)} media-corrected, "
              f"{len(set(state.torn_log_lines))} torn log lines")
    except ReproError as error:
        print(f"  recovery REJECTED: "
              f"{type(error).__name__}: {error}")
    report = run_scrub(
        system, degraded=DegradedModeManager(system, injector=injector))
    print(report.render())
    return 0 if report.clean else 1


def cmd_crashtest(args) -> int:
    from repro.harness import crash_campaign as cc

    config = cc.quick_config(seed=args.seed) if args.quick \
        else cc.CampaignConfig(seed=args.seed)
    config.shards = args.shards
    if args.points is not None:
        config.points = args.points
    if args.workloads:
        config.workloads = tuple(w.strip()
                                 for w in args.workloads.split(",")
                                 if w.strip())
        unknown = set(config.workloads) - set(WORKLOADS)
        if unknown:
            print(f"unknown workloads: {sorted(unknown)}",
                  file=sys.stderr)
            return 2
    if args.modes:
        config.modes = tuple(m.strip() for m in args.modes.split(",")
                             if m.strip())
    if args.no_scenarios:
        config.fault_scenarios = False

    report = cc.run_campaign(config, jobs=args.jobs,
                             progress=_progress_for(args, "crashtest"))
    print(cc.render_summary(report))
    if not args.no_write:
        directory = args.dir if args.dir is not None else cc.DEFAULT_DIR
        out = args.out if args.out is not None \
            else cc.crashtest_path(directory)
        cc.write_report(report, out)
        print(f"report -> {out}")
    return 1 if report["violations"] else 0


def cmd_soak(args) -> int:
    from repro.harness import soak as sk

    config = sk.quick_config(seed=args.seed) if args.quick \
        else sk.SoakConfig(seed=args.seed)
    config.shards = args.shards
    if args.cycles is not None:
        config.cycles = args.cycles
    if args.workloads:
        config.workloads = tuple(w.strip()
                                 for w in args.workloads.split(",")
                                 if w.strip())
        unknown = set(config.workloads) - set(WORKLOADS)
        if unknown:
            print(f"unknown workloads: {sorted(unknown)}",
                  file=sys.stderr)
            return 2
    if args.modes:
        config.modes = tuple(m.strip() for m in args.modes.split(",")
                             if m.strip())
    if args.no_oracle:
        config.idempotence_oracle = False

    report = sk.run_soak(config, jobs=args.jobs,
                         progress=_progress_for(args, "soak"))
    print(sk.render_summary(report))
    if not args.no_write:
        directory = args.dir if args.dir is not None else sk.DEFAULT_DIR
        out = args.out if args.out is not None \
            else sk.soak_path(directory)
        sk.write_report(report, out)
        print(f"report -> {out}")
    return 1 if report["violations"] else 0


def cmd_fuzz(args) -> int:
    from repro.validate import fuzz as fz

    if args.replay:
        failure = fz.replay(args.replay)
        if failure is None:
            print(f"{args.replay}: no longer fails")
            return 0
        print(f"{args.replay}: still fails")
        print(json.dumps(failure, indent=2, sort_keys=True))
        return 1

    if args.workloads is None:
        workloads = fz.DEFAULT_WORKLOADS
    elif args.workloads.strip().lower() == "none":
        workloads = ()
    else:
        workloads = tuple(w.strip() for w in args.workloads.split(",")
                          if w.strip())
        unknown = set(workloads) - set(WORKLOADS)
        if unknown:
            print(f"unknown workloads: {sorted(unknown)}",
                  file=sys.stderr)
            return 2
    cases = args.cases if args.cases is not None \
        else (12 if args.quick else 60)
    report = fz.run_fuzz(
        cases=cases, seed=args.seed, max_ops=args.max_ops,
        jobs=args.jobs, workloads=workloads, out_dir=args.dir,
        write=not args.no_write, shards=args.shards,
        progress=_progress_for(args, "fuzz"))
    print(fz.render_report(report))
    if not args.no_write and report["failures"]:
        print(f"repros -> {report['dir']}")
    return 1 if report["failures"] else 0


COMMANDS = {
    "figures": cmd_figures,
    "figure": cmd_figure,
    "run": cmd_run,
    "profile": cmd_profile,
    "chart": cmd_chart,
    "stats": cmd_stats,
    "compare": cmd_compare,
    "plan": cmd_plan,
    "misuse": cmd_misuse,
    "bench": cmd_bench,
    "scrub": cmd_scrub,
    "crashtest": cmd_crashtest,
    "soak": cmd_soak,
    "fuzz": cmd_fuzz,
}


def _run_id(args) -> str:
    """A deterministic run identifier for the structured log (never
    wall-clock-derived, so logs stay byte-reproducible)."""
    parts = [args.command]
    for attr in ("workload", "mode"):
        value = getattr(args, attr, None)
        if value:
            parts.append(str(value))
    seed = getattr(args, "seed", None)
    if seed is not None:
        parts.append(f"s{seed}")
    return "-".join(parts)


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    log_path = getattr(args, "log", None) or os.environ.get("REPRO_LOG")
    if not log_path:
        return COMMANDS[args.command](args)

    from repro.obs import log as runlog
    runlog.configure(path=log_path, run_id=_run_id(args),
                     seed=getattr(args, "seed", None))
    runlog.event("cli", "start", command=args.command)
    try:
        status = COMMANDS[args.command](args)
        runlog.event("cli", "exit", status=status)
        return status
    finally:
        runlog.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
