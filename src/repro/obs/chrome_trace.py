"""Chrome trace-event (Perfetto-compatible) JSON export.

Converts the normalized events of :class:`repro.obs.tracer.Tracer`
into the legacy Chrome trace-event JSON format, which
``ui.perfetto.dev`` and ``chrome://tracing`` both load directly:

* every distinct track process name becomes an integer ``pid`` and
  every ``(process, thread)`` pair an integer ``tid``;
* ``process_name`` / ``thread_name`` metadata records label the rows;
* ``ts``/``dur`` are converted from the simulator's nanoseconds to
  the format's microseconds (floats — Perfetto keeps ns precision).

The result is the live-run equivalent of the paper's Fig. 3 timeline:
drop the file into Perfetto and the overlap (or serialization) of the
BMO sub-operations of each write is directly visible on the ``bmo``
process's tracks.
"""

import json
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.obs.tracer import Tracer

_NS_PER_US = 1000.0


class _TrackIds:
    """Stable integer pid/tid assignment plus metadata records."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[str, str], int] = {}
        self.metadata: List[dict] = []

    def resolve(self, track: Tuple[str, str]) -> Tuple[int, int]:
        process, thread = track
        if process not in self._pids:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self.metadata.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process}})
        pid = self._pids[process]
        key = (process, thread)
        if key not in self._tids:
            tid = len(self._tids) + 1
            self._tids[key] = tid
            self.metadata.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": thread}})
        return pid, self._tids[key]


def to_chrome_trace(events: Iterable[dict]) -> dict:
    """Convert normalized tracer events to a Chrome trace dict."""
    tracks = _TrackIds()
    trace_events: List[dict] = []
    for event in events:
        pid, tid = tracks.resolve(event["track"])
        out = {
            "name": event["name"],
            "cat": event.get("cat", ""),
            "ph": event["ph"],
            "ts": event["ts"] / _NS_PER_US,
            "pid": pid,
            "tid": tid,
        }
        if event["ph"] == "X":
            out["dur"] = event["dur"] / _NS_PER_US
        if event["ph"] == "i":
            out["s"] = "t"  # thread-scoped instant
        if "args" in event:
            out["args"] = event["args"]
        trace_events.append(out)
    return {
        "traceEvents": tracks.metadata + trace_events,
        "displayTimeUnit": "ns",
    }


def export_chrome_trace(source: Union[Tracer, Iterable[dict]],
                        path: Optional[str] = None) -> str:
    """Render ``source`` (a tracer or event list) as JSON text;
    writes ``path`` when given."""
    events = source.events if isinstance(source, Tracer) else source
    text = json.dumps(to_chrome_trace(events))
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
