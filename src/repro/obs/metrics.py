"""Central metrics registry: counters, histograms, snapshots, exports.

One hierarchy for every statistic the simulator produces.  Components
register a :class:`MetricsScope` (``registry.scope("irb")``) and create
labeled counters/histograms inside it; the registry can then take a
point-in-time :meth:`MetricsRegistry.snapshot`, diff two snapshots
with :meth:`MetricsRegistry.delta`, and export everything as JSON or
CSV.  ``MetricsScope`` is API-compatible with the old
``repro.sim.stats.StatSet`` (``.counters`` / ``.histograms`` dicts,
``counter()`` / ``histogram()`` / ``as_dict()``), so all existing
call sites and tests keep working.

Histograms use *bounded reservoir sampling* (Algorithm R, seeded from
``repro.common.rng`` by metric name) so arbitrarily long runs keep a
constant memory footprint while ``percentile()`` stays available.

Hot-path convention: ``scope.counter(name)`` / ``scope.histogram(name)``
are get-or-create lookups keyed by string — cheap, but not free when
called once per simulated write.  Components on the write critical
path resolve their handles **once at construction** (``self._c_hits =
stats.counter("hits")``) and call ``.add()`` / ``.observe()`` on the
cached handle; see ``docs/performance.md``.
"""

import csv
import io
import json
import math
from typing import Dict, List, Optional

from repro.common.rng import DeterministicRng

#: Default number of samples a histogram retains for percentiles.
DEFAULT_RESERVOIR_SIZE = 1024


def _split_metric(name: str) -> "tuple":
    """``scope.path.metric{labels}`` -> (``scope.path``, ``metric{labels}``).

    The metric (short) name is everything after the last dot *before*
    any label suffix; scope paths may themselves contain dots
    (``parallel.worker``), metric names by convention do not.
    """
    brace = name.find("{")
    base, suffix = (name, "") if brace < 0 \
        else (name[:brace], name[brace:])
    scope, sep, key = base.rpartition(".")
    if not sep:
        return "", base + suffix
    return scope, key + suffix


def _labels_suffix(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """A named monotonically-increasing counter."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.value = 0
        self.labels = dict(labels) if labels else None

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"{self.name}{_labels_suffix(self.labels)}={self.value}"


class Histogram:
    """Streaming mean/min/max summary plus a bounded sample reservoir.

    ``keep_samples=True`` (the default) retains at most
    ``reservoir_size`` samples via reservoir sampling — Algorithm R,
    driven by a :class:`DeterministicRng` stream derived from the
    histogram's name, so runs stay bit-reproducible.  Memory is O(k)
    no matter how many samples are observed.

    ``keep_samples=False`` discards samples entirely; in that case
    :meth:`percentile` returns ``None`` (not ``0.0``) so callers
    cannot silently misread "samples were discarded" as a latency.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "reservoir_size", "_samples", "_rng", "_local_count")

    def __init__(self, name: str, keep_samples: bool = True,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels = dict(labels) if labels else None
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.reservoir_size = reservoir_size
        self._samples: Optional[List[float]] = [] if keep_samples else None
        self._rng = None  # created lazily on first reservoir eviction
        #: Samples observed *locally* (excludes folded-in summary
        #: counts, which carry no samples).  Algorithm R's admission
        #: probability must be k/local-seen: using the inflated
        #: ``count`` would under-admit real samples after a fold.
        self._local_count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self._local_count += 1
        self.total += value
        # Inline compares: two builtin min/max calls per observation
        # showed up in write-path dispatch profiles.
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._samples is None:
            return
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
            return
        # Reservoir full: keep each of the locally-seen samples with
        # equal probability k/local_count (Algorithm R).
        if self._rng is None:
            self._rng = DeterministicRng(0).stream(
                f"histogram:{self.name}")
        slot = self._rng.randrange(self._local_count)
        if slot < self.reservoir_size:
            self._samples[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def keeps_samples(self) -> bool:
        return self._samples is not None

    def percentile(self, p: float) -> Optional[float]:
        """Linear-interpolated percentile over the retained reservoir.

        Returns ``None`` when the histogram was created with
        ``keep_samples=False`` — there is nothing to interpolate, and
        returning ``0.0`` would read as a real (zero) latency.
        """
        if self._samples is None:
            return None
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(math.floor(rank))
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    def merge_summary(self, summary: Dict[str, float]) -> None:
        """Fold another histogram's :meth:`summary` into this one.

        Used for cross-process metric fold-in: a worker ships its
        snapshot back and the parent merges count/total/min/max.  The
        *reservoir* cannot be merged from a summary — percentiles on a
        folded histogram reflect only locally-observed samples.

        Tolerant of sparse worker summaries: an empty one (count 0)
        is a no-op, and a summary missing min/max (a worker that
        never filled them in) falls back to its mean rather than
        leaving ``inf`` bounds behind.
        """
        count = summary.get("count", 0)
        if not count:
            return
        mean = summary.get("mean", 0.0)
        self.count += count
        # Prefer the exact running sum when the summary carries one;
        # mean * count loses the low bits of a long-run total.
        self.total += summary.get("sum", mean * count)
        low = summary.get("min", mean)
        high = summary.get("max", mean)
        self.min = min(self.min, mean if math.isinf(low) else low)
        self.max = max(self.max, mean if math.isinf(high) else high)

    @property
    def percentiles_approximate(self) -> bool:
        """True when the reservoir no longer holds *every* observed
        sample — it dropped local samples (Algorithm R eviction) or
        absorbed sample-less summary fold-ins — so percentiles are
        reservoir estimates, not exact order statistics.
        """
        if self._samples is None:
            return False
        return (self._local_count > len(self._samples)
                or self.count != self._local_count)

    def summary(self) -> Dict[str, float]:
        """Exact running aggregates plus (possibly sampled) percentiles.

        ``count`` / ``sum`` / ``min`` / ``max`` / ``mean`` are exact —
        tracked streaming, independent of the reservoir.  Percentiles
        come from the reservoir; once it has dropped samples they are
        estimates, flagged with ``approximate: true`` so exports never
        silently present sampled percentiles as exact.
        """
        out = {
            "count": self.count,
            "mean": self.mean,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        # Percentiles only when the reservoir holds real samples: a
        # histogram populated purely by summary fold-ins would
        # otherwise report p50/p95/p99 = 0.0 — reading as a latency.
        if self._samples:
            out["p50"] = self.percentile(50)
            out["p95"] = self.percentile(95)
            out["p99"] = self.percentile(99)
            if self.percentiles_approximate:
                out["approximate"] = True
        return out


class MetricsScope:
    """A namespaced bag of counters and histograms inside a registry.

    Drop-in compatible with the old ``StatSet``: exposes ``counters``
    and ``histograms`` dicts keyed by short (label-free) name, and the
    same ``counter()`` / ``histogram()`` / ``as_dict()`` methods.
    Labeled variants of a metric live alongside the unlabeled one,
    keyed by ``name{k=v}``.
    """

    def __init__(self, name: str = "stats",
                 registry: Optional["MetricsRegistry"] = None):
        self.name = name
        self.registry = registry
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str,
                labels: Optional[Dict[str, str]] = None) -> Counter:
        key = name + _labels_suffix(labels)
        if key not in self.counters:
            self.counters[key] = Counter(name, labels=labels)
        return self.counters[key]

    def histogram(self, name: str,
                  labels: Optional[Dict[str, str]] = None,
                  keep_samples: bool = True,
                  reservoir_size: int = DEFAULT_RESERVOIR_SIZE
                  ) -> Histogram:
        key = name + _labels_suffix(labels)
        if key not in self.histograms:
            full = f"{self.name}.{name}" if self.name else name
            self.histograms[key] = Histogram(
                full, keep_samples=keep_samples,
                reservoir_size=reservoir_size, labels=labels)
        return self.histograms[key]

    def as_dict(self) -> Dict[str, float]:
        """Flat name -> value view (StatSet-compatible)."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, hist in self.histograms.items():
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.count"] = hist.count
        return out


class MetricsRegistry:
    """The hierarchical root: dotted-path scopes, snapshots, exports."""

    def __init__(self) -> None:
        self._scopes: Dict[str, MetricsScope] = {}

    def scope(self, name: str) -> MetricsScope:
        """Return (creating if needed) the scope at dotted path ``name``."""
        if name not in self._scopes:
            self._scopes[name] = MetricsScope(name, registry=self)
        return self._scopes[name]

    def adopt(self, name: str, scope: MetricsScope) -> MetricsScope:
        """Register an externally-created scope (e.g. a legacy StatSet)."""
        scope.registry = self
        self._scopes[name] = scope
        return scope

    def scopes(self) -> Dict[str, MetricsScope]:
        return dict(self._scopes)

    # -- flat views -----------------------------------------------------
    def as_flat_dict(self) -> Dict[str, float]:
        """``scope.metric`` -> value, matching the historical
        ``f"{prefix}.{k}"`` keys the harness exported."""
        out: Dict[str, float] = {}
        for scope_name, scope in sorted(self._scopes.items()):
            for key, value in scope.as_dict().items():
                out[f"{scope_name}.{key}"] = value
        return out

    # -- snapshots ------------------------------------------------------
    def snapshot(self, meta: Optional[Dict] = None) -> Dict:
        """Point-in-time copy of every metric, JSON-serialisable."""
        counters: Dict[str, int] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for scope_name, scope in sorted(self._scopes.items()):
            for key, counter in scope.counters.items():
                counters[f"{scope_name}.{key}"] = counter.value
            for key, hist in scope.histograms.items():
                histograms[f"{scope_name}.{key}"] = hist.summary()
        snap = {"schema": "repro-stats-v1",
                "counters": counters, "histograms": histograms}
        if meta:
            snap["meta"] = dict(meta)
        return snap

    def fold(self, snapshot: Dict) -> None:
        """Merge a :meth:`snapshot` (typically from another process)
        into this registry's live metrics.

        Counters add; histograms merge their count/total/min/max via
        :meth:`Histogram.merge_summary`.  Snapshot keys are
        ``<scope>.<metric>`` — the split assumes dot-free metric
        names (the repo-wide convention), with any ``{label=...}``
        suffix kept out of the split.  This is the cross-process
        fold-in used by :mod:`repro.harness.parallel`: workers account
        locally, ship one snapshot, and the parent folds it in.
        """
        for name, value in snapshot.get("counters", {}).items():
            scope_name, key = _split_metric(name)
            scope = self.scope(scope_name)
            if key not in scope.counters:
                scope.counters[key] = Counter(key)
            scope.counters[key].add(value)
        for name, summary in snapshot.get("histograms", {}).items():
            scope_name, key = _split_metric(name)
            scope = self.scope(scope_name)
            if key not in scope.histograms:
                scope.histograms[key] = Histogram(name)
            scope.histograms[key].merge_summary(summary)

    @staticmethod
    def delta(before: Dict, after: Dict) -> Dict:
        """Difference of two snapshots (``after - before``).

        Counters subtract; histograms report the sample-count delta
        and the mean of just the *new* samples (from total/count
        deltas).  Metrics present on only one side appear with the
        other side treated as zero/absent.
        """
        counters: Dict[str, int] = {}
        names = set(before.get("counters", {})) | \
            set(after.get("counters", {}))
        for name in sorted(names):
            diff = after.get("counters", {}).get(name, 0) \
                - before.get("counters", {}).get(name, 0)
            counters[name] = diff
        histograms: Dict[str, Dict[str, float]] = {}
        hnames = set(before.get("histograms", {})) | \
            set(after.get("histograms", {}))
        for name in sorted(hnames):
            b = before.get("histograms", {}).get(name, {})
            a = after.get("histograms", {}).get(name, {})
            dcount = a.get("count", 0) - b.get("count", 0)
            btotal = b.get("mean", 0.0) * b.get("count", 0)
            atotal = a.get("mean", 0.0) * a.get("count", 0)
            histograms[name] = {
                "count": dcount,
                "mean": (atotal - btotal) / dcount if dcount else 0.0,
            }
        return {"schema": "repro-stats-delta-v1",
                "counters": counters, "histograms": histograms}

    # -- exports --------------------------------------------------------
    def to_json(self, path: Optional[str] = None,
                meta: Optional[Dict] = None) -> str:
        text = json.dumps(self.snapshot(meta=meta), indent=2,
                          sort_keys=True)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text

    def to_csv(self, path: Optional[str] = None) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["metric", "field", "value"])
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            writer.writerow([name, "count", value])
        for name, summary in snap["histograms"].items():
            for field in sorted(summary):
                writer.writerow([name, field, summary[field]])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text)
        return text
