"""Unified observability: metrics, tracing, profiling, telemetry.

* :mod:`repro.obs.metrics` — hierarchical :class:`MetricsRegistry` of
  labeled counters and reservoir-sampled histograms, with snapshots,
  snapshot deltas, and JSON/CSV export;
* :mod:`repro.obs.tracer` — structured span/event :class:`Tracer`
  with a no-op :data:`NULL_TRACER` for near-zero disabled overhead;
* :mod:`repro.obs.chrome_trace` — Chrome trace-event (Perfetto) JSON
  exporter, the live-run analogue of the paper's Fig. 3 timeline;
* :mod:`repro.obs.profile` — deterministic simulation profiler:
  per-event-type dispatch attribution, per-component sim-time
  self/cumulative aggregation, folded-stack (speedscope) export;
* :mod:`repro.obs.timeseries` — sim-time-driven metric sampler
  (byte-deterministic JSONL series) plus a Prometheus text-exposition
  exporter;
* :mod:`repro.obs.log` — structured JSONL run logging correlated with
  traces and time series by ``run_id`` / ``seed`` / ``sim_ns``.
"""

from repro.obs.chrome_trace import export_chrome_trace, to_chrome_trace
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from repro.obs.profile import (
    SimProfiler,
    fold_spans,
    profile_report,
    render_hotspots,
)
from repro.obs.timeseries import TimeSeriesSampler, prometheus_exposition
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_TRACER",
    "NullTracer",
    "SimProfiler",
    "TimeSeriesSampler",
    "Tracer",
    "export_chrome_trace",
    "fold_spans",
    "profile_report",
    "prometheus_exposition",
    "render_hotspots",
    "to_chrome_trace",
]
