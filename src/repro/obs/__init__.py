"""Unified observability: metrics registry, span tracer, trace export.

* :mod:`repro.obs.metrics` — hierarchical :class:`MetricsRegistry` of
  labeled counters and reservoir-sampled histograms, with snapshots,
  snapshot deltas, and JSON/CSV export;
* :mod:`repro.obs.tracer` — structured span/event :class:`Tracer`
  with a no-op :data:`NULL_TRACER` for near-zero disabled overhead;
* :mod:`repro.obs.chrome_trace` — Chrome trace-event (Perfetto) JSON
  exporter, the live-run analogue of the paper's Fig. 3 timeline.
"""

from repro.obs.chrome_trace import export_chrome_trace, to_chrome_trace
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "export_chrome_trace",
    "to_chrome_trace",
]
