"""Structured span/event tracing with near-zero disabled overhead.

The simulator's components hold a reference to one :class:`Tracer`
(or the shared :data:`NULL_TRACER`).  Hot paths guard every emission
with a single attribute lookup::

    if self.tracer.enabled:
        self.tracer.complete("aes", "bmo", ("bmo", "encryption"),
                             start_ns=t0, dur_ns=now - t0)

Events are stored as plain dicts in a normalized, Chrome-trace-like
shape with **nanosecond** timestamps::

    {"name": ..., "cat": ..., "ph": "X" | "i" | "C",
     "ts": <ns>, "dur": <ns, "X" only>,
     "track": (<process name>, <thread name>), "args": {...}}

``track`` identifies the timeline row: a ``(process, thread)`` pair of
human-readable names.  ``repro.obs.chrome_trace`` maps tracks to the
integer ``pid``/``tid`` the Chrome trace-event format wants and emits
the matching metadata records, so the same events open directly in
``ui.perfetto.dev``.

Sinks (``add_sink``) observe every event as it is emitted — that is
how the legacy ``repro.harness.trace.WriteTracer`` consumes write
spans without owning its own instrumentation.
"""

from typing import Callable, Dict, List, Optional, Tuple

Track = Tuple[str, str]


class NullTracer:
    """The disabled tracer: every emission is a no-op.

    ``enabled`` is a plain class attribute, so the hot-path guard
    ``if tracer.enabled:`` costs one attribute lookup and no call.
    """

    enabled = False
    events: List[dict] = []  # always empty; shared intentionally

    def enable(self) -> None:  # pragma: no cover - defensive
        raise RuntimeError(
            "NULL_TRACER is shared and cannot be enabled; construct a "
            "Tracer() and install it on the system instead")

    def complete(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def add_sink(self, sink) -> None:  # pragma: no cover - defensive
        raise RuntimeError("cannot attach a sink to NULL_TRACER")

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer — the default for every component.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects normalized span/instant/counter events.

    A tracer starts *disabled*; flip it on with :meth:`enable` (the
    CLI does this when ``--trace`` is given, ``WriteTracer.attach``
    does it for the legacy API).  Sinks receive every event dict as it
    is emitted, even ones filtered from storage by ``store=False``.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: List[dict] = []
        self._sinks: List[Callable[[dict], None]] = []

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.events.clear()

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        self._sinks.append(sink)
        self.enabled = True

    def __len__(self) -> int:
        return len(self.events)

    # -- emission -------------------------------------------------------
    def _emit(self, event: dict) -> None:
        self.events.append(event)
        for sink in self._sinks:
            sink(event)

    def complete(self, name: str, cat: str, track: Track,
                 start_ns: float, dur_ns: float,
                 args: Optional[Dict] = None) -> None:
        """A span: work named ``name`` occupied ``track`` for
        ``[start_ns, start_ns + dur_ns)``."""
        if not self.enabled:
            return
        event = {"name": name, "cat": cat, "ph": "X",
                 "ts": start_ns, "dur": dur_ns, "track": track}
        if args:
            event["args"] = args
        self._emit(event)

    def instant(self, name: str, cat: str, track: Track, ts_ns: float,
                args: Optional[Dict] = None) -> None:
        """A zero-duration marker (IRB hit/miss, invalidation, ...)."""
        if not self.enabled:
            return
        event = {"name": name, "cat": cat, "ph": "i",
                 "ts": ts_ns, "track": track}
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, name: str, track: Track, ts_ns: float,
                values: Dict[str, float]) -> None:
        """A sampled counter series (write-queue occupancy, ...)."""
        if not self.enabled:
            return
        self._emit({"name": name, "cat": "counter", "ph": "C",
                    "ts": ts_ns, "track": track, "args": dict(values)})

    # -- queries --------------------------------------------------------
    def spans(self, cat: Optional[str] = None,
              name: Optional[str] = None) -> List[dict]:
        """Stored complete ("X") events, optionally filtered."""
        return [e for e in self.events
                if e["ph"] == "X"
                and (cat is None or e["cat"] == cat)
                and (name is None or e["name"] == name)]
