"""Structured run logging: one JSONL event stream per run.

Before this module, diagnostics were ad-hoc ``print`` calls scattered
over the CLI and harness: a fault injection, an invariant violation,
a degraded-mode retry, and a sweep-worker death all rendered as
unrelated prose on stderr, impossible to correlate with the span
tracer or the time-series stream.  ``repro.obs.log`` replaces that
with one structured channel:

* every record is one JSON object per line (JSONL) with a fixed
  envelope — ``run_id``, ``seed``, ``seq``, ``sim_ns``,
  ``component``, ``event``, ``level`` — plus free-form fields;
* ``sim_ns`` is *simulation* time, so log records line up exactly
  with tracer spans and time-series samples from the same run.  No
  wall-clock timestamps are recorded: a same-seed run produces a
  byte-identical log;
* the logger is **disabled by default** and every emission site
  guards with one module-level check, so the cost of the
  instrumentation is a single ``is None`` test when no log is
  configured (the same discipline as ``tracer.enabled``).

Usage — the CLI configures a run log when ``--log PATH`` (or
``$REPRO_LOG``) is given::

    from repro.obs import log as runlog

    runlog.configure(path="run.jsonl", run_id="tpcc-janus-s7", seed=7)
    ...
    runlog.event("faults", "injected", sim_ns=sim.now,
                 kind="media_write_flip", addr=0x1240)
    runlog.close()

Library code never configures the log; it only calls
:func:`event` (a no-op unless something configured one).  Components
with a live simulator pass ``sim_ns``; harness-level events (worker
retries, report writes) omit it.
"""

import io
import json
from typing import Dict, List, Optional

#: Severity order for :meth:`RunLog.min_level` filtering.
LEVELS = ("debug", "info", "warn", "error")


class RunLog:
    """A structured JSONL event sink for one run (or one campaign).

    Records are dicts rendered with sorted keys, one per line.  The
    envelope fields are stable and always first-class:

    ``run_id``
        Caller-chosen identifier tying the log to a trace/time-series
        file (the CLI derives it from workload/mode/seed — never from
        wall-clock, so logs stay byte-reproducible).
    ``seed``
        The deterministic seed of the run, when there is one.
    ``seq``
        Monotone per-log sequence number — the total order of events
        as emitted, including harness events with no ``sim_ns``.
    ``sim_ns``
        Simulation time of the event (omitted for harness events).
    ``component`` / ``event`` / ``level``
        Dotted component name (``faults``, ``harness.parallel``),
        short event name, severity.
    ``span``
        Optional correlation id shared with a tracer span.
    """

    def __init__(self, stream=None, path: Optional[str] = None,
                 run_id: Optional[str] = None,
                 seed: Optional[int] = None,
                 min_level: str = "debug"):
        if min_level not in LEVELS:
            raise ValueError(f"unknown log level {min_level!r}")
        self._own_stream = stream is None and path is not None
        if stream is not None:
            self._stream = stream
        elif path is not None:
            from repro.harness.report import ensure_parent
            self._stream = open(ensure_parent(path), "w")
        else:
            self._stream = io.StringIO()
        self.path = path
        self.run_id = run_id
        self.seed = seed
        self.seq = 0
        #: Bound envelope fields stamped onto every record until
        #: unbound (the soak harness binds the cycle index here so
        #: recovery/scrub events carry it without plumbing).
        self.context: Dict = {}
        self._threshold = LEVELS.index(min_level)

    # -- emission -------------------------------------------------------
    def event(self, component: str, event: str,
              sim_ns: Optional[float] = None, level: str = "info",
              span: Optional[int] = None, **fields) -> None:
        """Emit one structured record (sorted-key JSON, one line)."""
        if LEVELS.index(level) < self._threshold:
            return
        record: Dict = {"seq": self.seq, "component": component,
                        "event": event, "level": level}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        if self.seed is not None:
            record["seed"] = self.seed
        if sim_ns is not None:
            record["sim_ns"] = sim_ns
        if span is not None:
            record["span"] = span
        for key, value in {**self.context, **fields}.items():
            if value is not None:
                record[key] = value
        self.seq += 1
        self._stream.write(json.dumps(record, sort_keys=True,
                                      default=str) + "\n")

    # -- lifecycle / inspection ----------------------------------------
    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        self.flush()
        if self._own_stream:
            self._stream.close()

    def text(self) -> str:
        """The accumulated JSONL (in-memory logs only)."""
        if isinstance(self._stream, io.StringIO):
            return self._stream.getvalue()
        raise ValueError("text() is only available for in-memory logs")

    def records(self) -> List[Dict]:
        """Parsed records (in-memory logs only) — test convenience."""
        return [json.loads(line) for line in
                self.text().splitlines() if line]


#: The process-wide current log, or ``None`` (logging disabled).
_CURRENT: Optional[RunLog] = None


def configure(path: Optional[str] = None, stream=None,
              run_id: Optional[str] = None,
              seed: Optional[int] = None,
              min_level: str = "debug") -> RunLog:
    """Install a :class:`RunLog` as the process-wide current log.

    Replaces (and closes) any previously configured log.  Returns the
    new log so callers can also hold a direct reference.
    """
    global _CURRENT
    if _CURRENT is not None:
        _CURRENT.close()
    _CURRENT = RunLog(stream=stream, path=path, run_id=run_id,
                      seed=seed, min_level=min_level)
    return _CURRENT


def current() -> Optional[RunLog]:
    """The configured log, or ``None`` when logging is disabled."""
    return _CURRENT


def close() -> None:
    """Close and uninstall the current log (no-op when disabled)."""
    global _CURRENT
    if _CURRENT is not None:
        _CURRENT.close()
        _CURRENT = None


def bind(**fields) -> None:
    """Stamp ``fields`` onto every subsequent record's envelope (e.g.
    ``bind(cycle=3)`` in the soak harness).  No-op when disabled."""
    if _CURRENT is not None:
        _CURRENT.context.update(fields)


def unbind(*names: str) -> None:
    """Remove previously bound envelope fields (missing names are
    ignored).  No-op when disabled."""
    if _CURRENT is not None:
        for name in names:
            _CURRENT.context.pop(name, None)


def event(component: str, event_name: str,
          sim_ns: Optional[float] = None, level: str = "info",
          span: Optional[int] = None, **fields) -> None:
    """Emit to the current log; a cheap no-op when none is configured.

    This is the call every instrumentation site uses — the disabled
    cost is one module-global ``is None`` check.
    """
    if _CURRENT is None:
        return
    _CURRENT.event(component, event_name, sim_ns=sim_ns, level=level,
                   span=span, **fields)
