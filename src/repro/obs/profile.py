"""Deterministic simulation profiler (``repro profile``).

Answers the question the event-core rewrite campaign needs answered
before touching anything: *where does simulation cost go?*  Two
complementary attributions, both derived from a single run:

* **Dispatch profile** — the :class:`~repro.sim.engine.Simulator`
  instrumented loop classifies every dispatched callback into a
  stable *event-type* key (``process:subop:aes``, ``timeout``,
  ``event:done:xor``, ...) and records counts plus host wall-clock
  nanoseconds.  Counts are a pure function of the run (deterministic
  and byte-stable); wall-clock is host-measured and reported
  separately, never written into the byte-stable artifacts.
* **Component profile** — the span stream of an enabled
  :class:`~repro.obs.tracer.Tracer` is folded into per-track call
  stacks by interval containment, yielding per-``(track, name)``
  counts and cumulative / self **sim-time** nanoseconds, plus a
  Brendan-Gregg *folded stacks* rendering (``a;b;c <weight>``) that
  speedscope and standard flamegraph tooling load directly.

The profiler is attach-by-assignment: ``sim.profile = SimProfiler()``
switches :meth:`Simulator.run` onto its instrumented loop; with no
profiler (and no sampler) the fast loop is the *unmodified* dispatch
loop, so the disabled path costs exactly one ``is None`` check per
``run()`` call — not per event (pinned by
``tests/test_obs_overhead.py``).  There is one instrumented loop per
scheduler — the bucketed calendar queue and the reference heap — each
mirroring its fast loop's dispatch order exactly, so a profile never
changes what it measures.
"""

import re
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

PROFILE_SCHEMA = "repro-profile-v1"

_NUMERIC = re.compile(r"^(0[xX][0-9a-fA-F]+|\d+(\.\d+)?)$")
#: Containment slack for float span arithmetic (sim-ns).
_EPS = 1e-6


def normalize_event_name(name: str) -> str:
    """Collapse a process/event name to a bounded-cardinality key.

    Strips call-site arguments (``timeout(15.0)`` -> ``timeout``),
    drops pure-numeric path segments (``clwb:0x180`` -> ``clwb``) and
    trailing instance digits (``program0`` -> ``program``), so keys
    aggregate across addresses/cores instead of exploding per line.
    """
    name = name.split("(", 1)[0]
    parts = []
    for token in name.split(":"):
        token = token.strip()
        if not token or _NUMERIC.match(token):
            continue
        stripped = token.rstrip("0123456789")
        parts.append(stripped or token)
    return ":".join(parts)


def classify_callback(fn: Callable) -> str:
    """Stable event-type key for one dispatched simulator callback."""
    owner = getattr(fn, "__self__", None)
    if owner is None:
        return f"fn:{getattr(fn, '__qualname__', repr(fn))}"
    kind = type(owner).__name__.lower()
    if kind == "simevent":
        kind = "event"
    name = normalize_event_name(getattr(owner, "name", "") or "")
    if not name or name == kind or name == "all_of":
        return kind
    return f"{kind}:{name}"


class SimProfiler:
    """Per-event-type dispatch accounting for one simulator run.

    Assign to ``sim.profile`` *before* running.  ``dispatch`` maps
    event-type key -> ``[count, wall_ns]``; counts are deterministic,
    wall-ns are host noise and excluded from :func:`profile_report`.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self.clock = clock
        self.dispatch: Dict[str, List[int]] = {}
        self._key_cache: Dict[Tuple[type, str], str] = {}
        self.total_events = 0
        self.total_wall_ns = 0

    def record(self, fn: Callable, wall_ns: int) -> None:
        """Called by the instrumented dispatch loop, once per event."""
        owner = getattr(fn, "__self__", None)
        if owner is None:
            key = classify_callback(fn)
        else:
            cache_key = (type(owner), getattr(owner, "name", "") or "")
            key = self._key_cache.get(cache_key)
            if key is None:
                key = self._key_cache[cache_key] = classify_callback(fn)
        entry = self.dispatch.get(key)
        if entry is None:
            entry = self.dispatch[key] = [0, 0]
        entry[0] += 1
        entry[1] += wall_ns
        self.total_events += 1
        self.total_wall_ns += wall_ns

    def rows(self) -> List[Dict]:
        """Dispatch rows ranked by count (deterministic order)."""
        return [
            {"key": key, "count": self.dispatch[key][0],
             "wall_ns": self.dispatch[key][1]}
            for key in sorted(self.dispatch,
                              key=lambda k: (-self.dispatch[k][0], k))
        ]


# -- span folding ---------------------------------------------------------
class _Frame:
    __slots__ = ("name", "start", "end", "dur", "child_ns")

    def __init__(self, name: str, start: float, dur: float):
        self.name = name
        self.start = start
        self.end = start + dur
        self.dur = dur
        self.child_ns = 0.0


def fold_spans(events: Iterable[dict]
               ) -> Tuple[Dict[str, float], Dict[Tuple, List[float]]]:
    """Nest tracer spans by interval containment, per track.

    Returns ``(folded, frames)``:

    * ``folded`` — folded-stack path (``process;thread;a;b``) ->
      total *self* sim-ns along that path;
    * ``frames`` — ``(process, thread, name)`` ->
      ``[count, cum_ns, self_ns]`` aggregates.

    Spans on the same track that merely overlap (concurrent
    writebacks on one core) are siblings, not parents: a span only
    becomes a child when its interval is contained in the top of
    stack.  Sorting is by ``(start, -dur, emission index)``, so the
    nesting — and therefore every output byte — is a deterministic
    function of the span set.
    """
    per_track: Dict[Tuple[str, str], List[Tuple]] = {}
    for index, event in enumerate(events):
        if event.get("ph") != "X":
            continue
        track = tuple(event["track"])
        per_track.setdefault(track, []).append(
            (event["ts"], -event["dur"], index, event))

    folded: Dict[str, float] = {}
    frames: Dict[Tuple, List[float]] = {}

    for track in sorted(per_track):
        prefix = f"{track[0]};{track[1]}"
        stack: List[_Frame] = []
        path: List[str] = []

        def pop() -> None:
            frame = stack.pop()
            self_ns = max(0.0, frame.dur - frame.child_ns)
            key = ";".join([prefix] + path)
            folded[key] = folded.get(key, 0.0) + self_ns
            path.pop()
            row = frames.setdefault((track[0], track[1], frame.name),
                                    [0, 0.0, 0.0])
            row[0] += 1
            row[1] += frame.dur
            row[2] += self_ns
            if stack:
                stack[-1].child_ns += frame.dur

        for start, _negdur, _index, event in sorted(per_track[track]):
            dur = event["dur"]
            end = start + dur
            while stack and not (stack[-1].start <= start + _EPS
                                 and end <= stack[-1].end + _EPS):
                pop()
            stack.append(_Frame(event["name"], start, dur))
            path.append(event["name"])
        while stack:
            pop()
    return folded, frames


def folded_stacks_text(folded: Dict[str, float]) -> str:
    """Folded stacks in the ``stack;frames;leaf weight`` flat format
    (speedscope's "Brendan Gregg folded stacks" importer).  Weights
    are integer sim-ns; zero-weight paths are dropped."""
    lines = []
    for path in sorted(folded):
        weight = int(round(folded[path]))
        if weight > 0:
            lines.append(f"{path} {weight}")
    return "\n".join(lines) + ("\n" if lines else "")


def component_rows(frames: Dict[Tuple, List[float]]) -> List[Dict]:
    """Per-(track, name) aggregates ranked by self sim-ns."""
    rows = [
        {"process": process, "thread": thread, "name": name,
         "count": int(stats[0]),
         "cum_ns": round(stats[1], 3),
         "self_ns": round(stats[2], 3)}
        for (process, thread, name), stats in frames.items()
    ]
    rows.sort(key=lambda r: (-r["self_ns"], -r["cum_ns"], r["process"],
                             r["thread"], r["name"]))
    return rows


# -- report assembly ------------------------------------------------------
def profile_report(profiler: Optional[SimProfiler], tracer,
                   meta: Optional[Dict] = None) -> Dict:
    """Assemble the deterministic (byte-stable) profile report.

    Everything in the returned dict is a pure function of the
    simulated run: dispatch *counts*, component sim-ns, folded
    stacks.  Host wall-clock stays on the live :class:`SimProfiler`
    object for the CLI's table — it is never written here, which is
    what lets same-seed reports compare byte-identical.
    """
    folded, frames = fold_spans(tracer.events if tracer else [])
    report = {
        "schema": PROFILE_SCHEMA,
        "meta": dict(meta or {}),
        "dispatch": [
            {"key": row["key"], "count": row["count"]}
            for row in (profiler.rows() if profiler else [])
        ],
        "components": component_rows(frames),
        "folded": folded_stacks_text(folded),
    }
    if profiler is not None:
        report["meta"]["dispatched_events"] = profiler.total_events
    return report


def render_hotspots(report: Dict, profiler: Optional[SimProfiler] = None,
                    top: int = 12) -> str:
    """The ranked hotspot table ``repro profile`` prints.

    Component ranks and sim-ns come from the deterministic report;
    the dispatch section appends live host wall-clock (marked as
    such) when the profiler that measured it is still at hand.
    """
    meta = report.get("meta", {})
    title = " x ".join(str(meta[k]) for k in ("workload", "mode")
                       if k in meta) or "run"
    lines = [f"repro profile — {title}"
             + (f"  ({meta['elapsed_ns']:,.0f} sim-ns, "
                f"{meta.get('dispatched_events', 0):,} events)"
                if "elapsed_ns" in meta else "")]
    components = report.get("components", [])
    total_self = sum(r["self_ns"] for r in components) or 1.0
    lines.append(f"{'rank':>4s} {'track':24s} {'span':20s} "
                 f"{'count':>8s} {'self sim-ns':>14s} "
                 f"{'cum sim-ns':>14s} {'self%':>6s}")
    for rank, row in enumerate(components[:top], start=1):
        track = f"{row['process']}/{row['thread']}"
        lines.append(
            f"{rank:>4d} {track:24s} {row['name']:20s} "
            f"{row['count']:>8d} {row['self_ns']:>14,.0f} "
            f"{row['cum_ns']:>14,.0f} "
            f"{100.0 * row['self_ns'] / total_self:>5.1f}%")
    if len(components) > top:
        lines.append(f"     ... {len(components) - top} more "
                     f"(full list in the report JSON)")
    dispatch = report.get("dispatch", [])
    if dispatch:
        lines.append("")
        lines.append("dispatch by event type"
                     + (" (wall-clock is host-measured, "
                        "not byte-stable)" if profiler else ""))
        header = f"{'key':32s} {'count':>10s}"
        if profiler:
            header += f" {'wall ms':>10s} {'ns/event':>9s}"
        lines.append(header)
        wall = {row["key"]: row["wall_ns"]
                for row in profiler.rows()} if profiler else {}
        for row in dispatch[:top]:
            line = f"{row['key']:32s} {row['count']:>10,d}"
            if profiler:
                wall_ns = wall.get(row["key"], 0)
                line += (f" {wall_ns / 1e6:>10.2f}"
                         f" {wall_ns / max(1, row['count']):>9,.0f}")
            lines.append(line)
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> str:
    """Write the deterministic report JSON (sorted keys)."""
    import json

    from repro.harness.report import ensure_parent
    with open(ensure_parent(path), "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
