"""Deterministic sim-time-driven metric time series.

A :class:`TimeSeriesSampler` snapshots the metrics registry every
``interval_ns`` *simulated* nanoseconds.  Because the trigger is the
simulation clock — not wall time, threads, or timers — the sampled
series is a pure function of the run: byte-identical across hosts,
repeat runs, and ``--jobs`` counts, the same merge discipline the
parallel sweep executor guarantees for its reports.

The sampler deliberately does **not** schedule simulator events: a
self-rescheduling "sampler process" would inflate the event count,
keep the event queue non-empty forever, and perturb
``run(until=...)`` semantics.  Instead the
:class:`~repro.sim.engine.Simulator` dispatch loop calls
:meth:`on_advance` whenever the clock crosses the next sample
boundary (see ``Simulator.run`` — the check only exists on the
instrumented loop, so an unsampled run pays nothing).  Under the
default bucketed scheduler the clock only advances *between* same-time
batches, so the boundary check runs once per batch rather than once
per event — the sample points are identical either way because a
boundary can only be crossed where time advances.

Outputs:

* :meth:`to_jsonl` — one header line plus one JSON object per sample
  (``repro-ts-v1``), the format ``repro chart`` plots;
* :func:`prometheus_exposition` — any registry snapshot (including a
  sample) rendered in the Prometheus text exposition format, for
  scraping a long-running service;
* optional live counter tracks: give the sampler a tracer and a list
  of metric names and every sample also lands as a Chrome-trace
  counter event, so Perfetto plots the series under the timeline.
"""

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

TS_SCHEMA = "repro-ts-v1"

#: Metrics mirrored onto tracer counter tracks by default: the
#: write-path occupancy/progress signals Fig. 3-style timelines need.
DEFAULT_COUNTER_TRACKS = (
    "wq.accepted", "wq.drained", "mc.writes_persisted",
    "janus.fully_pre_executed", "janus.partially_pre_executed",
)


class TimeSeriesSampler:
    """Samples a :class:`~repro.obs.metrics.MetricsRegistry` every
    ``interval_ns`` of simulation time.

    Attach by assignment: ``sim.sampler = sampler`` (after
    ``bind(system.metrics)``); the simulator's instrumented dispatch
    loop drives :meth:`on_advance`.  Call :meth:`finish` once the run
    ends to record the final partial interval.
    """

    def __init__(self, interval_ns: float,
                 registry=None, tracer=None,
                 counter_tracks: Iterable[str] = DEFAULT_COUNTER_TRACKS,
                 meta: Optional[Dict] = None):
        if interval_ns <= 0:
            raise ValueError(
                f"sample interval must be positive, got {interval_ns}")
        self.interval_ns = interval_ns
        #: Next sim-time boundary at which to take a sample.  The
        #: dispatch loop compares against this directly.
        self.next_ns = interval_ns
        self.registry = registry
        self.tracer = tracer
        self.counter_tracks = tuple(counter_tracks)
        self.meta = dict(meta) if meta else {}
        self.samples: List[Dict] = []
        self._finished = False

    def bind(self, registry, tracer=None) -> "TimeSeriesSampler":
        """Late-bind the registry (and optionally tracer) to sample."""
        self.registry = registry
        if tracer is not None:
            self.tracer = tracer
        return self

    # -- driven by the simulator loop -----------------------------------
    def on_advance(self, now: float) -> None:
        """The clock reached ``now`` (>= :attr:`next_ns`): take every
        sample boundary passed, stamped at the boundary itself.

        Samples are stamped at the *boundary* time, not the event time
        that crossed it, so two runs whose event times differ inside
        an interval still produce identically-stamped samples.
        """
        while now >= self.next_ns:
            self._take(self.next_ns)
            self.next_ns += self.interval_ns

    def finish(self, now: float) -> None:
        """Record the final partial interval at end-of-run time."""
        if self._finished:
            return
        self._finished = True
        if not self.samples or self.samples[-1]["sim_ns"] < now:
            self._take(now)

    def _take(self, sim_ns: float) -> None:
        if self.registry is None:
            raise ValueError("sampler has no registry; call bind()")
        metrics = self.registry.as_flat_dict()
        self.samples.append({"sim_ns": sim_ns, "metrics": metrics})
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            for name in self.counter_tracks:
                value = metrics.get(name)
                if value is not None:
                    scope = name.rpartition(".")[0] or name
                    tracer.counter(f"ts:{name}",
                                   ("timeseries", scope), sim_ns,
                                   {name: value})

    # -- exports --------------------------------------------------------
    def header(self) -> Dict:
        return {"schema": TS_SCHEMA,
                "interval_ns": self.interval_ns,
                "samples": len(self.samples),
                **{k: self.meta[k] for k in sorted(self.meta)}}

    def to_jsonl(self) -> str:
        """Header line + one sorted-key JSON object per sample."""
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(sample, sort_keys=True)
                     for sample in self.samples)
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> str:
        from repro.harness.report import ensure_parent
        with open(ensure_parent(path), "w") as handle:
            handle.write(self.to_jsonl())
        return path


def load_jsonl(path: str) -> Tuple[Dict, List[Dict]]:
    """Read a ``repro-ts-v1`` file back as ``(header, samples)``."""
    with open(path) as handle:
        lines = [line for line in handle.read().splitlines() if line]
    if not lines:
        raise ValueError(f"{path}: empty time-series file")
    header = json.loads(lines[0])
    if header.get("schema") != TS_SCHEMA:
        raise ValueError(f"{path}: not a {TS_SCHEMA} file")
    return header, [json.loads(line) for line in lines[1:]]


def series_of(samples: List[Dict], metric: str
              ) -> List[Tuple[float, float]]:
    """``(sim_ns, value)`` pairs for one metric (absent samples skip)."""
    out = []
    for sample in samples:
        value = sample["metrics"].get(metric)
        if value is not None:
            out.append((sample["sim_ns"], value))
    return out


def render_series(samples: List[Dict], metric: str,
                  width: int = 60, height: int = 12) -> str:
    """ASCII metric-over-sim-time chart (the ``repro chart`` view)."""
    points = series_of(samples, metric)
    if not points:
        available = sorted({name for sample in samples
                            for name in sample["metrics"]})
        hint = ", ".join(available[:8])
        return (f"{metric}: no samples"
                + (f" (known metrics include: {hint}, ...)" if hint
                   else ""))
    values = [v for _t, v in points]
    lo, hi = min(values), max(values)
    span = hi - lo
    t_lo, t_hi = points[0][0], points[-1][0]
    t_span = (t_hi - t_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        col = min(width - 1, int((t - t_lo) / t_span * (width - 1)))
        row = 0 if span == 0 else \
            min(height - 1, int((v - lo) / span * (height - 1)))
        grid[height - 1 - row][col] = "*"
    lines = [f"{metric}  [{lo:g} .. {hi:g}]  "
             f"{len(points)} samples over {t_hi - t_lo:,.0f} sim-ns"]
    for index, row in enumerate(grid):
        edge = f"{hi:>10g} |" if index == 0 else (
            f"{lo:>10g} |" if index == height - 1 else
            " " * 10 + " |")
        lines.append(edge + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{t_lo:,.0f} ns"
                 + " " * max(1, width - 24) + f"{t_hi:,.0f} ns")
    return "\n".join(lines)


# -- Prometheus text exposition ------------------------------------------
_PROM_BAD = re.compile(r"[^a-zA-Z0-9_]")
_LABELS = re.compile(r"^(.*?)\{(.*)\}$")


def _prom_name(name: str, prefix: str) -> str:
    return _PROM_BAD.sub("_", f"{prefix}_{name}")


def _split_prom(name: str) -> Tuple[str, str]:
    """``scope.metric{k=v,...}`` -> (bare name, prometheus labels)."""
    match = _LABELS.match(name)
    if not match:
        return name, ""
    base, inner = match.group(1), match.group(2)
    pairs = []
    for part in inner.split(","):
        key, _sep, value = part.partition("=")
        pairs.append(f'{_PROM_BAD.sub("_", key)}="{value}"')
    return base, "{" + ",".join(pairs) + "}"


def prometheus_exposition(snapshot: Dict, prefix: str = "repro") -> str:
    """Render a ``repro-stats-v1`` snapshot (from
    :meth:`MetricsRegistry.snapshot`) as Prometheus text exposition.

    Counters become ``counter`` metrics; histograms become
    ``summary``-style families (``_count`` / ``_sum`` plus quantile
    samples).  Reservoir-estimated quantiles carry an
    ``approximate="true"`` label — the exposition must be as honest as
    the JSON export about sampled percentiles.
    """
    lines: List[str] = []
    typed = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for name in sorted(snapshot.get("counters", {})):
        bare, labels = _split_prom(name)
        prom = _prom_name(bare, prefix)
        declare(prom, "counter")
        lines.append(f"{prom}{labels} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        summary = snapshot["histograms"][name]
        bare, labels = _split_prom(name)
        prom = _prom_name(bare, prefix)
        declare(prom, "summary")
        lines.append(f"{prom}_count{labels} {summary.get('count', 0)}")
        total = summary.get(
            "sum", summary.get("mean", 0.0) * summary.get("count", 0))
        lines.append(f"{prom}_sum{labels} {total}")
        approx = ',approximate="true"' if summary.get("approximate") \
            else ""
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            if key in summary:
                inner = labels[1:-1] + "," if labels else ""
                lines.append(
                    f'{prom}{{{inner}quantile="{quantile}"'
                    f'{approx}}} {summary[key]}')
    return "\n".join(lines) + ("\n" if lines else "")
