"""A simple persistent-heap allocator over the NVM address space.

Workloads allocate their data structures (arrays, tree nodes, log
regions) from an :class:`NvmHeap`.  Allocation is a first-fit free
list over a bump region — enough to exercise realistic, non-contiguous
layouts while remaining deterministic.

Cache-line alignment matters to Janus: ``PRE_DATA`` alone is only safe
on line-aligned objects (paper §4.4 guideline 2), so the heap exposes
``alloc(..., align=64)`` and workloads use it for pre-executed
objects.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import AllocationError
from repro.common.units import CACHE_LINE_BYTES, align_up


@dataclass
class Allocation:
    """One live allocation."""

    addr: int
    size: int
    label: str


class NvmHeap:
    """First-fit allocator with free-list coalescing."""

    def __init__(self, base: int, size: int):
        if size <= 0:
            raise AllocationError("heap size must be positive")
        self.base = base
        self.size = size
        # Free list of (addr, size), kept sorted by addr.
        self._free: List[Tuple[int, int]] = [(base, size)]
        self._live: Dict[int, Allocation] = {}
        self.bytes_allocated = 0

    def alloc(self, size: int, align: int = 8, label: str = "") -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns address."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        if align <= 0 or (align & (align - 1)):
            raise AllocationError(f"alignment must be a power of two: {align}")
        for i, (addr, extent) in enumerate(self._free):
            start = align_up(addr, align)
            pad = start - addr
            if extent >= pad + size:
                # Split the free block into [pad][allocation][tail].
                pieces = []
                if pad:
                    pieces.append((addr, pad))
                tail = extent - pad - size
                if tail:
                    pieces.append((start + size, tail))
                self._free[i:i + 1] = pieces
                self._live[start] = Allocation(start, size, label)
                self.bytes_allocated += size
                return start
        raise AllocationError(
            f"out of NVM heap: wanted {size} bytes (align {align}), "
            f"free={self.free_bytes()}")

    def alloc_line(self, size: int, label: str = "") -> int:
        """Allocate with cache-line alignment (for PRE_DATA targets)."""
        return self.alloc(size, align=CACHE_LINE_BYTES, label=label)

    def reserve(self, addr: int, size: int, label: str = "") -> int:
        """Carve out an allocation at an *exact* address.

        Image-restore paths (the soak harness resuming a workload on a
        recovered NVM image) need the rebuilt heap to reproduce the
        carried layout, not merely an equivalent one.  Raises
        :class:`AllocationError` when ``[addr, addr + size)`` is not
        wholly inside one free block.
        """
        if size <= 0:
            raise AllocationError(f"reservation size must be positive: {size}")
        for i, (start, extent) in enumerate(self._free):
            if start <= addr and addr + size <= start + extent:
                pieces = []
                if addr > start:
                    pieces.append((start, addr - start))
                tail = (start + extent) - (addr + size)
                if tail:
                    pieces.append((addr + size, tail))
                self._free[i:i + 1] = pieces
                self._live[addr] = Allocation(addr, size, label)
                self.bytes_allocated += size
                return addr
        raise AllocationError(
            f"cannot reserve [{addr:#x}, {addr + size:#x}): not free")

    def free(self, addr: int) -> None:
        """Release a live allocation, coalescing neighbours."""
        alloc = self._live.pop(addr, None)
        if alloc is None:
            raise AllocationError(f"free of unallocated address {addr:#x}")
        self.bytes_allocated -= alloc.size
        self._free.append((alloc.addr, alloc.size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for start, extent in self._free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                prev_start, prev_extent = merged[-1]
                merged[-1] = (prev_start, prev_extent + extent)
            else:
                merged.append((start, extent))
        self._free = merged

    def owner_of(self, addr: int) -> Optional[Allocation]:
        """The live allocation containing ``addr``, if any."""
        for alloc in self._live.values():
            if alloc.addr <= addr < alloc.addr + alloc.size:
                return alloc
        return None

    def free_bytes(self) -> int:
        return sum(extent for _addr, extent in self._free)

    def live_allocations(self) -> List[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.addr)
