"""Byte-addressable functional memory and the volatile plaintext view."""

from typing import Dict, Iterator, Tuple

from repro.common.errors import MemoryError_
from repro.common.units import CACHE_LINE_BYTES, align_down, line_span


class FunctionalMemory:
    """Sparse byte store with line-granular bookkeeping.

    Used for the persistent NVM contents (ciphertext when encryption
    is enabled).  Unwritten bytes read as zero.
    """

    def __init__(self, capacity_bytes: int,
                 line_bytes: int = CACHE_LINE_BYTES):
        if capacity_bytes <= 0 or capacity_bytes % line_bytes:
            raise MemoryError_(
                f"capacity {capacity_bytes} must be a positive multiple "
                f"of the {line_bytes}-byte line size")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self._lines: Dict[int, bytes] = {}

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.capacity_bytes:
            raise MemoryError_(
                f"access [{addr:#x}, {addr + size:#x}) outside capacity "
                f"{self.capacity_bytes:#x}")

    # -- line interface ----------------------------------------------------
    def read_line(self, line_addr: int) -> bytes:
        self._check(line_addr, self.line_bytes)
        if line_addr % self.line_bytes:
            raise MemoryError_(f"unaligned line address {line_addr:#x}")
        return self._lines.get(line_addr, bytes(self.line_bytes))

    def write_line(self, line_addr: int, data: bytes) -> None:
        self._check(line_addr, self.line_bytes)
        if line_addr % self.line_bytes:
            raise MemoryError_(f"unaligned line address {line_addr:#x}")
        if len(data) != self.line_bytes:
            raise MemoryError_(
                f"line write must be {self.line_bytes} bytes, "
                f"got {len(data)}")
        self._lines[line_addr] = bytes(data)

    def written_lines(self) -> Iterator[Tuple[int, bytes]]:
        """All (line_addr, data) pairs ever written (recovery scans)."""
        return iter(sorted(self._lines.items()))

    # -- byte-range interface -----------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        self._check(addr, size)
        out = bytearray()
        for line_addr in line_span(addr, size, self.line_bytes):
            out += self.read_line(line_addr)
        offset = addr - align_down(addr, self.line_bytes)
        return bytes(out[offset:offset + size])

    def write(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        pos = 0
        while pos < len(data):
            line_addr = align_down(addr + pos, self.line_bytes)
            line = bytearray(self.read_line(line_addr))
            start = (addr + pos) - line_addr
            chunk = min(self.line_bytes - start, len(data) - pos)
            line[start:start + chunk] = data[pos:pos + chunk]
            self.write_line(line_addr, bytes(line))
            pos += chunk

    def __len__(self) -> int:
        """Number of distinct lines ever written."""
        return len(self._lines)


class VolatileView(FunctionalMemory):
    """The plaintext view the program manipulates (caches + registers).

    Functionally identical to :class:`FunctionalMemory`; kept as a
    distinct type so call sites make clear which domain they touch.
    A crash discards this object.
    """
