"""NVM device timing: channels as queuing servers.

A channel is busy for ``read_service_ns`` / ``write_service_ns`` per
64 B access (PCM-class timings; Table 3 uses a 533 MHz PCM with long
tWR).  With several cores issuing traffic the channel queue grows and
memory latency inflates — the contention that makes Janus's relative
benefit shrink at 8 cores (paper §5.2.1, trend 1).
"""

from typing import Dict, Optional

from repro.common.config import MemoryConfig
from repro.sim import Resource, Simulator
from repro.sim.stats import StatSet


class NvmDevice:
    """Channel-level timing model in front of the functional memory.

    Besides timing, the device keeps per-line write counts — the raw
    material of the endurance problem wear-leveling exists to solve
    (Table 1).  ``wear_statistics`` summarises the distribution so
    tests and benches can show Start-Gap flattening it.
    """

    def __init__(self, sim: Simulator, config: MemoryConfig,
                 stats: Optional[StatSet] = None):
        self.sim = sim
        self.cfg = config
        self._channels = [
            Resource(sim, capacity=1, name=f"nvm-ch{i}")
            for i in range(config.channels)
        ]
        self.reads = 0
        self.writes = 0
        #: line address -> number of device writes (cell wear).
        self.write_counts: Dict[int, int] = {}
        self.stats = stats if stats is not None else StatSet("nvm")
        #: Optional ``repro.faults.FaultInjector`` (set by ``attach``).
        #: Read-side media faults are armed here on the timing path;
        #: write-side corruption applies where the functional bytes
        #: land (the write-queue drain / ADR flush).
        self.injector = None

    def _count(self, name: str) -> None:
        self.stats.counter(name).add()

    def _channel_for(self, addr: int) -> Resource:
        index = (addr // 64) % len(self._channels)
        return self._channels[index]

    def read_access(self, addr: int):
        """Process: occupy the channel for one line read."""
        self.reads += 1
        self._count("reads")
        if self.injector is not None:
            self.injector.on_device_read(addr)
        yield from self._channel_for(addr).use(self.cfg.read_service_ns)

    def write_access(self, addr: int):
        """Process: occupy the channel for one line write."""
        self.writes += 1
        self._count("writes")
        self.write_counts[addr] = self.write_counts.get(addr, 0) + 1
        yield from self._channel_for(addr).use(self.cfg.write_service_ns)

    def wear_statistics(self) -> Dict[str, float]:
        """Summary of the per-line wear distribution."""
        if not self.write_counts:
            return {"lines": 0, "max": 0, "mean": 0.0, "imbalance": 0.0}
        counts = list(self.write_counts.values())
        mean = sum(counts) / len(counts)
        worst = max(counts)
        return {
            "lines": len(counts),
            "max": worst,
            "mean": mean,
            # max/mean: 1.0 is perfectly even wear; the hot-spot
            # factor wear-leveling is meant to pull down.
            "imbalance": worst / mean if mean else 0.0,
        }

    def utilisation(self) -> float:
        """Mean utilisation across channels."""
        if not self._channels:
            return 0.0
        return sum(c.utilisation() for c in self._channels) \
            / len(self._channels)
