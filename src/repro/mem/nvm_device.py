"""NVM device timing: channels as queuing servers.

A channel is busy for ``read_service_ns`` / ``write_service_ns`` per
64 B access (PCM-class timings; Table 3 uses a 533 MHz PCM with long
tWR).  With several cores issuing traffic the channel queue grows and
memory latency inflates — the contention that makes Janus's relative
benefit shrink at 8 cores (paper §5.2.1, trend 1).

In the sharded machine (``SystemConfig.shards > 1``) each memory
controller owns one ``NvmDevice`` fronting its own channel group —
``MemoryConfig.channels`` is per controller, as in real DDR-T/NVDIMM
topologies, so shard count multiplies total channel parallelism
(``shards=1`` keeps the classic single device, bit for bit).
Per-channel bandwidth and queueing accounting
(:meth:`channel_statistics`) lives in plain attributes, not the
metrics registry, so enabling it costs no snapshot bytes.
"""

from typing import Dict, List, Optional

from repro.common.config import MemoryConfig
from repro.sim import Resource, Simulator
from repro.sim.stats import StatSet


class NvmDevice:
    """Channel-level timing model in front of the functional memory.

    Besides timing, the device keeps per-line write counts — the raw
    material of the endurance problem wear-leveling exists to solve
    (Table 1).  ``wear_statistics`` summarises the distribution so
    tests and benches can show Start-Gap flattening it.
    """

    def __init__(self, sim: Simulator, config: MemoryConfig,
                 stats: Optional[StatSet] = None,
                 channels: Optional[int] = None,
                 shard_id: int = 0,
                 local_addr=None):
        self.sim = sim
        self.cfg = config
        self.shard_id = shard_id
        #: Global -> shard-local address map for channel hashing.  A
        #: sharded device sees stride-interleaved global addresses;
        #: hashing those directly would alias whole stripes onto a
        #: subset of channels, so the machine passes the router's
        #: densifying map.  ``None`` (unsharded) hashes the address
        #: as-is.
        self._local_addr = local_addr
        n_channels = channels if channels is not None \
            else config.channels
        self._channels = [
            Resource(sim, capacity=1, name=f"nvm-s{shard_id}ch{i}"
                     if shard_id else f"nvm-ch{i}")
            for i in range(n_channels)
        ]
        self.reads = 0
        self.writes = 0
        #: line address -> number of device writes (cell wear).
        self.write_counts: Dict[int, int] = {}
        # Per-channel queueing/bandwidth accounting (plain Python, so
        # the metrics snapshot stays identical whether or not anyone
        # reads it): accesses completed, time spent waiting for the
        # channel, and busy (service) time per channel.
        self._ch_accesses: List[int] = [0] * n_channels
        self._ch_wait_ns: List[float] = [0.0] * n_channels
        self._ch_busy_ns: List[float] = [0.0] * n_channels
        self.stats = stats if stats is not None else StatSet("nvm")
        #: Optional ``repro.faults.FaultInjector`` (set by ``attach``).
        #: Read-side media faults are armed here on the timing path;
        #: write-side corruption applies where the functional bytes
        #: land (the write-queue drain / ADR flush).
        self.injector = None

    def _count(self, name: str) -> None:
        self.stats.counter(name).add()

    def _channel_index(self, addr: int) -> int:
        if self._local_addr is not None:
            addr = self._local_addr(addr)
        return (addr // 64) % len(self._channels)

    def _channel_for(self, addr: int) -> Resource:
        return self._channels[self._channel_index(addr)]

    def _access(self, addr: int, service_ns: float):
        """Process: acquire the line's channel, serve, and account.

        Event-for-event identical to ``Resource.use`` — the wait/busy
        bookkeeping happens between existing yields, never adding one.
        """
        index = self._channel_index(addr)
        channel = self._channels[index]
        arrival = self.sim.now
        grant = channel.acquire()
        try:
            yield grant
        except BaseException:
            channel.cancel(grant)
            raise
        self._ch_accesses[index] += 1
        self._ch_wait_ns[index] += self.sim.now - arrival
        self._ch_busy_ns[index] += service_ns
        try:
            yield self.sim.delay(service_ns)
        finally:
            channel.release()

    def read_access(self, addr: int):
        """Process: occupy the channel for one line read."""
        self.reads += 1
        self._count("reads")
        if self.injector is not None:
            self.injector.on_device_read(addr)
        yield from self._access(addr, self.cfg.read_service_ns)

    def write_access(self, addr: int):
        """Process: occupy the channel for one line write."""
        self.writes += 1
        self._count("writes")
        self.write_counts[addr] = self.write_counts.get(addr, 0) + 1
        yield from self._access(addr, self.cfg.write_service_ns)

    def wear_statistics(self) -> Dict[str, float]:
        """Summary of the per-line wear distribution."""
        if not self.write_counts:
            return {"lines": 0, "max": 0, "mean": 0.0, "imbalance": 0.0}
        counts = list(self.write_counts.values())
        mean = sum(counts) / len(counts)
        worst = max(counts)
        return {
            "lines": len(counts),
            "max": worst,
            "mean": mean,
            # max/mean: 1.0 is perfectly even wear; the hot-spot
            # factor wear-leveling is meant to pull down.
            "imbalance": worst / mean if mean else 0.0,
        }

    def channel_statistics(self) -> List[Dict[str, float]]:
        """Per-channel queueing/bandwidth summary, in channel order.

        ``accesses`` / ``busy_ns`` measure delivered bandwidth (64 B
        per access over busy time); ``mean_wait_ns`` and the live
        ``queue_length`` expose queueing pressure per channel.
        """
        out = []
        for index, channel in enumerate(self._channels):
            accesses = self._ch_accesses[index]
            out.append({
                "channel": index,
                "accesses": accesses,
                "busy_ns": self._ch_busy_ns[index],
                "wait_ns": self._ch_wait_ns[index],
                "mean_wait_ns": self._ch_wait_ns[index] / accesses
                if accesses else 0.0,
                "utilisation": channel.utilisation(),
                "queue_length": channel.queue_length,
            })
        return out

    def utilisation(self) -> float:
        """Mean utilisation across channels."""
        if not self._channels:
            return 0.0
        return sum(c.utilisation() for c in self._channels) \
            / len(self._channels)
