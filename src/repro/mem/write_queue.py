"""The memory-controller write queue — the persist domain under ADR.

With Intel ADR, a write is durable the moment it is *accepted* into
the write queue (paper §2.3 / Fig. 1): residual energy flushes the
queue to NVM on power failure.  So:

* ``accept(entry)`` is the persist point — the caller's ``sfence``
  completes once all its writebacks have been accepted;
* the drain process then performs the actual device write in the
  background, off the critical path.

The queue is bounded; when full, ``accept`` blocks until the drain
frees a slot (back-pressure, which matters under multi-core load).
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.config import MemoryConfig
from repro.common.errors import SimulationError
from repro.mem.nvm_device import NvmDevice
from repro.obs.tracer import NULL_TRACER
from repro.sim import Resource, Simulator
from repro.sim.stats import StatSet


@dataclass
class WriteEntry:
    """One line-sized write heading to the device."""

    addr: int
    data: bytes
    #: Invoked (synchronously) when the device write retires; the
    #: memory controller uses it to land ciphertext in functional NVM.
    on_drain: Optional[Callable[["WriteEntry"], None]] = None
    metadata: dict = field(default_factory=dict)
    #: Set by :meth:`WriteQueue.accept` at the persist point.  ``None``
    #: until then, so residency accounting can never silently observe
    #: a not-yet-accepted entry as "accepted at t=0".
    accepted_at: Optional[int] = None


class WriteQueue:
    """Bounded persist-domain queue with a background drain process."""

    TRACK = ("mem", "write-queue")

    def __init__(self, sim: Simulator, config: MemoryConfig,
                 device: NvmDevice, stats=None, tracer=None):
        self.sim = sim
        self.device = device
        self._slots = Resource(sim, capacity=config.write_queue_entries,
                               name="write-queue")
        self.accepted = 0
        self.drained = 0
        self._idle_waiters: List = []
        #: Entries accepted (durable under ADR) but not yet drained.
        self._pending: List[WriteEntry] = []
        self.stats = stats if stats is not None else StatSet("wq")
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional ``repro.faults.FaultInjector``: consulted after
        #: each drain (media faults on the landed line) and per entry
        #: during the ADR flush (drop / tear on power loss).
        self.injector = None
        # Hot metric handles: resolved once, not per accepted write.
        self._c_accepted = self.stats.counter("accepted")
        self._c_drained = self.stats.counter("drained")
        self._h_occupancy = self.stats.histogram("occupancy")
        self._h_full_stall = self.stats.histogram("full_stall_ns")
        self._h_residency = self.stats.histogram("residency_ns")

    def accept(self, entry: WriteEntry):
        """Process: block until a slot is free, then persist ``entry``.

        Returns once the entry is durably in the persist domain; the
        device write continues in the background.
        """
        arrival = self.sim.now
        grant = self._slots.acquire()
        try:
            yield grant
        except BaseException:
            # Killed while stalled on a full queue: withdraw the slot
            # request so the dead waiter can't leak capacity.
            self._slots.cancel(grant)
            raise
        self.accepted += 1
        self._c_accepted.add()
        self._h_occupancy.observe(self.outstanding)
        if arrival < self.sim.now:
            # Back-pressure: the queue was full and this write stalled.
            self._h_full_stall.observe(self.sim.now - arrival)
        entry.accepted_at = self.sim.now
        self._pending.append(entry)
        if self.tracer.enabled:
            self.tracer.counter("wq-occupancy", self.TRACK, self.sim.now,
                                {"outstanding": self.outstanding})
        self.sim.process(self._drain(entry), name="wq-drain")

    def _drain(self, entry: WriteEntry):
        try:
            yield from self.device.write_access(entry.addr)
            if entry in self._pending:  # not already ADR-flushed
                self._pending.remove(entry)
                if entry.on_drain is not None:
                    entry.on_drain(entry)
                if self.injector is not None:
                    self.injector.on_device_write(entry)
            self.drained += 1
            self._c_drained.add()
            if entry.accepted_at is None:
                raise SimulationError(
                    f"drain of unaccepted write entry {entry.addr:#x}")
            self._h_residency.observe(self.sim.now - entry.accepted_at)
            if self.tracer.enabled:
                self.tracer.complete(
                    "wq-residency", "mem", self.TRACK,
                    start_ns=entry.accepted_at,
                    dur_ns=self.sim.now - entry.accepted_at,
                    args={"addr": entry.addr})
                self.tracer.counter(
                    "wq-occupancy", self.TRACK, self.sim.now,
                    {"outstanding": self.outstanding - 1})
        finally:
            self._slots.release()
            if self.outstanding == 0:
                waiters, self._idle_waiters = self._idle_waiters, []
                for event in waiters:
                    event.succeed()

    def adr_flush(self) -> int:
        """Power-failure path: complete every accepted entry's device
        write *now*, as Intel ADR's residual energy would.  Returns
        the number of entries flushed.

        With a fault injector attached, each entry gets a fate: a
        clean flush, a *drop* (the residual energy ran out before
        this entry), or a *tear* (the line landed half-new/half-old).
        Dropped and torn lines model ADR failure — downstream layers
        (log CRCs, MACs) must detect them, never consume them.
        """
        pending, self._pending = self._pending, []
        flushed = 0
        for entry in pending:
            fate = "flush" if self.injector is None \
                else self.injector.adr_fate(entry)
            if fate == "drop":
                continue
            if fate == "tear":
                self.injector.tear(entry)
            if entry.on_drain is not None:
                entry.on_drain(entry)
            if self.injector is not None:
                self.injector.on_device_write(entry)
            flushed += 1
        return flushed

    @property
    def outstanding(self) -> int:
        """Entries accepted but not yet drained to the device."""
        return self._slots.in_use

    def drained_event(self):
        """Event that fires when the queue is fully drained.

        Used by crash tests to distinguish "persisted" (accepted) from
        "device-visible" (drained) state.
        """
        event = self.sim.event("wq-idle")
        if self.outstanding == 0:
            event.succeed()
        else:
            self._idle_waiters.append(event)
        return event
