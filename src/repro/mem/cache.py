"""Two-level set-associative cache latency model.

The caches here decide *how long* a core-side load/store takes; the
data itself lives in the :class:`repro.mem.memory.VolatileView`.  This
split keeps the functional state simple while still giving
lookup-heavy workloads (hash table, RB-tree) realistic traversal
costs — which matters because their short pre-execution window is one
of the paper's headline observations (§5.2.1, trend 2).
"""

from collections import OrderedDict
from typing import Tuple

from repro.common.errors import ConfigError
from repro.common.units import CACHE_LINE_BYTES


class _SetAssocArray:
    """LRU tag array (no data)."""

    def __init__(self, size_bytes: int, ways: int,
                 line_bytes: int = CACHE_LINE_BYTES):
        lines = size_bytes // line_bytes
        if lines < ways or lines % ways:
            raise ConfigError(
                f"cache of {size_bytes} B cannot hold {ways} ways")
        self.sets = lines // ways
        self.ways = ways
        self.line_bytes = line_bytes
        self._tags = [OrderedDict() for _ in range(self.sets)]

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.sets, line // self.sets

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit, inserting on miss."""
        set_index, tag = self._locate(addr)
        tags = self._tags[set_index]
        if tag in tags:
            tags.move_to_end(tag)
            return True
        if len(tags) >= self.ways:
            tags.popitem(last=False)
        tags[tag] = True
        return False

    def contains(self, addr: int) -> bool:
        set_index, tag = self._locate(addr)
        return tag in self._tags[set_index]

    def invalidate(self, addr: int) -> None:
        set_index, tag = self._locate(addr)
        self._tags[set_index].pop(tag, None)


class CacheModel:
    """L1 + L2 latency model with hit/miss statistics."""

    def __init__(self, cache_config, memory_read_ns: float):
        cfg = cache_config
        self.cfg = cfg
        self._l1 = _SetAssocArray(cfg.l1_size_bytes, ways=8)
        self._l2 = _SetAssocArray(cfg.l2_size_bytes, ways=8)
        self._memory_read_ns = memory_read_ns
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0

    def access_ns(self, addr: int) -> float:
        """Latency of a load/store to ``addr``, updating LRU state."""
        latency, _level = self.access_with_level(addr)
        return latency

    def access_with_level(self, addr: int):
        """Like :meth:`access_ns` but also reports the serving level
        (``"l1"`` / ``"l2"`` / ``"mem"``) — the read path needs to
        know which lines actually travelled from the NVM device and
        therefore required decryption."""
        if self._l1.access(addr):
            self.l1_hits += 1
            return self.cfg.l1_hit_ns, "l1"
        if self._l2.access(addr):
            self.l2_hits += 1
            return self.cfg.l1_hit_ns + self.cfg.l2_hit_ns, "l2"
        self.misses += 1
        return (self.cfg.l1_hit_ns + self.cfg.l2_hit_ns
                + self._memory_read_ns), "mem"

    def hit_rate(self) -> float:
        total = self.l1_hits + self.l2_hits + self.misses
        if total == 0:
            return 0.0
        return (self.l1_hits + self.l2_hits) / total
