"""Memory substrate: functional NVM, heap, caches, device timing.

Two parallel views of memory exist, mirroring a real encrypted NVM
system:

* the **volatile view** (:class:`VolatileView`) — the plaintext bytes
  the program reads and writes through the cache hierarchy;
* the **persistent NVM** (:class:`FunctionalMemory`) — the bytes that
  actually live on the device, which with encryption enabled are
  ciphertext, written only by the memory controller after the BMOs.

Crash tests drop the volatile view and reconstruct program state from
the persistent side through the BMO metadata, which is what makes the
crash-consistency guarantees testable rather than assumed.
"""

from repro.mem.cache import CacheModel
from repro.mem.heap import NvmHeap
from repro.mem.memory import FunctionalMemory, VolatileView
from repro.mem.nvm_device import NvmDevice
from repro.mem.shard import ShardRouter
from repro.mem.write_queue import WriteQueue

__all__ = [
    "CacheModel",
    "FunctionalMemory",
    "NvmDevice",
    "NvmHeap",
    "ShardRouter",
    "VolatileView",
    "WriteQueue",
]
