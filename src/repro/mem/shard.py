"""Shard address map: interleave line addresses across controllers.

The sharded machine (``SystemConfig.shards > 1``) splits the physical
address space across N memory controllers by rotating fixed-size
*stripes* round-robin: stripe ``k`` (the ``shard_interleave_bytes``
bytes starting at ``k * shard_interleave_bytes``) belongs to shard
``k % shards``.  Within a shard, its stripes are repacked densely —
stripe ``k`` becomes the shard-local stripe ``k // shards`` — so each
controller sees a contiguous local address space it can hash into its
own channel group, exactly like an unsharded device of 1/N capacity.

Both maps are pure arithmetic on integers (no tables), so the router
is a bijection by construction; ``tests/test_shard_router.py``
property-tests the round-trip and the balance guarantee anyway.

With ``shards == 1`` every address is shard 0 and the local map is the
identity — the pre-sharding machine, bit for bit.
"""

from typing import Iterable, Tuple

from repro.common.config import SystemConfig
from repro.common.units import CACHE_LINE_BYTES


class ShardRouter:
    """Address-interleaving map between global and shard-local space.

    ``shards`` and ``interleave_bytes`` must already satisfy the
    ``SystemConfig`` sharding constraints (powers of two, interleave
    >= cache line); the router trusts its inputs — validation lives in
    :meth:`repro.common.config.SystemConfig.validate`.
    """

    __slots__ = ("shards", "interleave_bytes")

    def __init__(self, shards: int = 1,
                 interleave_bytes: int = CACHE_LINE_BYTES):
        self.shards = shards
        self.interleave_bytes = interleave_bytes

    @classmethod
    def from_config(cls, config: SystemConfig) -> "ShardRouter":
        return cls(shards=config.shards,
                   interleave_bytes=config.shard_interleave_bytes)

    def shard_of(self, addr: int) -> int:
        """Owning shard of a global byte address."""
        return (addr // self.interleave_bytes) % self.shards

    def to_local(self, addr: int) -> Tuple[int, int]:
        """Global address -> ``(shard, shard-local address)``."""
        stripe, offset = divmod(addr, self.interleave_bytes)
        shard, local_stripe = stripe % self.shards, stripe // self.shards
        return shard, local_stripe * self.interleave_bytes + offset

    def to_global(self, shard: int, local_addr: int) -> int:
        """``(shard, shard-local address)`` -> global address."""
        local_stripe, offset = divmod(local_addr, self.interleave_bytes)
        return (local_stripe * self.shards + shard) \
            * self.interleave_bytes + offset

    def lines_per_shard(self, capacity_bytes: int) -> Iterable[int]:
        """Cache lines owned by each shard over ``[0, capacity)``.

        With a capacity that is a whole number of full stripes (the
        config validator guarantees it), every shard owns exactly
        ``capacity / shards`` bytes — the balance-within-one-line
        property the tests assert for arbitrary spans.
        """
        lines = [0] * self.shards
        total_lines = capacity_bytes // CACHE_LINE_BYTES
        lines_per_stripe = self.interleave_bytes // CACHE_LINE_BYTES
        for stripe in range(total_lines // lines_per_stripe):
            lines[stripe % self.shards] += lines_per_stripe
        return lines
